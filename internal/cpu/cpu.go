// Package cpu provides the deterministic, cycle-approximate processor
// model on which every experiment runs. It substitutes for the paper's
// FPGA BOOM prototype and gem5 SMT model (DESIGN.md §2): all reported
// numbers in the paper are relative overheads driven by branch
// mispredictions and front-end redirects, which this model simulates
// structurally:
//
//   - a fetch-width-limited front end where taken branches end the fetch
//     group;
//   - a full pipeline-flush penalty on direction/target mispredictions
//     and a short decode-redirect penalty on direct-branch BTB misses
//     (the prototype "simply reverts to fall-through prediction when the
//     target is unavailable" — §6.2.1, the mechanism behind case2's
//     negative overhead);
//   - SMT fetch arbitration: each cycle one ready hardware thread fetches
//     a full group, round-robin, so a stalled thread donates bandwidth;
//   - an OS model: timer interrupts (context switches between software
//     threads sharing a hardware context) and per-benchmark syscalls,
//     both of which execute a synthetic kernel handler at kernel
//     privilege and fire the isolation controller's events.
package cpu

import (
	"xorbp/internal/btb"
	"xorbp/internal/core"
	"xorbp/internal/predictor"
	"xorbp/internal/rng"
	"xorbp/internal/snap"
	"xorbp/internal/workload"
)

// Config is the core microarchitecture (Table 2). The JSON tags define
// its canonical wire form (internal/wire): stable snake_case names, one
// per field, no omitted fields.
type Config struct {
	// Name labels the configuration in reports.
	Name string `json:"name"`
	// FetchWidth is the front-end width (instructions per cycle).
	FetchWidth int `json:"fetch_width"`
	// MispredictPenalty is the pipeline-flush cost in cycles (≈ depth).
	MispredictPenalty uint64 `json:"mispredict_penalty"`
	// BTBMissPenalty is the decode-redirect cost for direct taken
	// branches whose target missed in the BTB.
	BTBMissPenalty uint64 `json:"btb_miss_penalty"`
	// BTB is the target buffer geometry.
	BTB btb.Config `json:"btb"`
	// RASDepth is the return address stack depth.
	RASDepth int `json:"ras_depth"`
	// HWThreads is the number of hardware thread contexts (SMT ways).
	HWThreads int `json:"hw_threads"`
}

// FPGAConfig is the paper's FPGA RISC-V BOOM prototype: 4-wide, 10-stage
// (Table 2).
func FPGAConfig() Config {
	return Config{
		Name:              "fpga-boom",
		FetchWidth:        4,
		MispredictPenalty: 12,
		BTBMissPenalty:    3,
		BTB:               btb.FPGAConfig(),
		RASDepth:          16,
		HWThreads:         1,
	}
}

// Gem5Config is the paper's gem5 SMT model after Sunny Cove: 8-wide,
// 19-stage (Table 2).
func Gem5Config(smtThreads int) Config {
	return Config{
		Name:              "gem5-sunnycove",
		FetchWidth:        8,
		MispredictPenalty: 20,
		BTBMissPenalty:    4,
		BTB:               btb.Gem5Config(),
		RASDepth:          32,
		HWThreads:         smtThreads,
	}
}

// SchedulerConfig is the OS model.
type SchedulerConfig struct {
	// TimerPeriod is the cycles between timer interrupts per hardware
	// thread. The paper's 250 Hz Linux at 2 GHz is 8 Mcycles; the
	// experiments sweep 4M/8M/12M (scaled in the harness, see
	// EXPERIMENTS.md).
	TimerPeriod uint64
	// KernelBranches is the mean number of branch events the synthetic
	// kernel handler executes per privilege entry.
	KernelBranches int
	// Seed drives kernel-footprint draws.
	Seed uint64
}

// DefaultScheduler returns the scheduler model used across experiments.
func DefaultScheduler(timerPeriod uint64) SchedulerConfig {
	return SchedulerConfig{TimerPeriod: timerPeriod, KernelBranches: 120, Seed: 0x05}
}

// ThreadStats accumulates per-software-thread measurements.
type ThreadStats struct {
	Instructions uint64 `json:"instructions"` // user instructions retired
	Branches     uint64 `json:"branches"`
	CondBranches uint64 `json:"cond_branches"`
	DirMisp      uint64 `json:"dir_misp"`     // direction-predictor mispredictions
	EffMisp      uint64 `json:"eff_misp"`     // effective (pipeline-flushing) mispredictions
	TargMisp     uint64 `json:"targ_misp"`    // target mispredictions (BTB/RAS)
	DecodeRedir  uint64 `json:"decode_redir"` // cheap decode redirects (direct BTB misses)
	Syscalls     uint64 `json:"syscalls"`
}

// MPKI returns direction mispredictions per kilo-instruction.
func (s ThreadStats) MPKI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.DirMisp) / float64(s.Instructions) * 1000
}

// eventRingSize is the per-thread event ring capacity. One refill
// amortizes the Program interface dispatch (and, for generators, the
// RNG-driven synthesis machinery) over this many branches.
const eventRingSize = 256

// swThread is one software thread: a program plus its fetch cursor.
// Events are pulled through a fixed ring refilled in bulk via
// workload.BatchProgram, so the steady-state fetch path performs no
// interface calls and no allocations.
type swThread struct {
	prog     workload.Program
	batch    workload.BatchProgram
	ring     []workload.BranchEvent
	ringPos  int
	ringLen  int
	stats    ThreadStats
	ev       workload.BranchEvent
	gapLeft  int
	evLoaded bool
	kernel   bool // kernel handler pseudo-thread
	// activeCycles counts cycles attributed to this thread: on a
	// single-threaded core, every cycle (fetching, stalled, or in a
	// syscall on its behalf) belongs to the scheduled software thread.
	// This is the denoised single-core performance metric: wall time
	// includes the co-scheduled benchmark's slices, whose boundary
	// quantization would otherwise dominate scaled-down runs.
	activeCycles uint64
}

// newSWThread wires a software thread's event ring around its program.
func newSWThread(p workload.Program, kernel bool) *swThread {
	return &swThread{
		prog:   p,
		batch:  workload.Batched(p),
		ring:   make([]workload.BranchEvent, eventRingSize),
		kernel: kernel,
	}
}

// load pulls the thread's next branch event from the ring, refilling in
// bulk when it drains. The ring preserves the per-thread event stream
// exactly: programs are pure sources, so pulling events ahead of the
// cycle they are fetched on cannot change what they contain.
//
//bpvet:hotpath
func (t *swThread) load() {
	if t.ringPos == t.ringLen {
		t.ringLen = t.batch.NextBatch(t.ring)
		t.ringPos = 0
	}
	t.ev = t.ring[t.ringPos]
	t.ringPos++
	t.gapLeft = int(t.ev.Gap)
	t.evLoaded = true
}

// hwContext is one hardware thread (SMT way).
type hwContext struct {
	id         core.HWThread
	sw         []*swThread
	cur        int
	priv       core.Privilege
	stallUntil uint64
	nextTimer  uint64
	kernel     *swThread
	kernelLeft int
	pendingCtx bool // context switch due at kernel exit
}

// active returns the stream the context is fetching from.
//
//bpvet:hotpath
func (hc *hwContext) active() *swThread {
	if hc.kernelLeft > 0 {
		return hc.kernel
	}
	return hc.sw[hc.cur]
}

// Core is the simulated processor.
type Core struct {
	cfg   Config
	sched SchedulerConfig
	ctrl  *core.Controller
	dir   predictor.DirPredictor
	dirPU predictor.PredictUpdater // fused fast path, nil if unsupported
	btb   *btb.BTB
	ras   *btb.RAS

	hw     []*hwContext
	cycle  uint64
	rr     int // SMT fetch round-robin pointer
	krng   *rng.Xoshiro256
	engine Engine

	// Periodic re-keying (STBPU-style asynchronous key refresh): every
	// rekeyPeriod cycles the controller rotates every key domain. The
	// event is taken at fetch-group entry — the first group whose cycle
	// reaches nextRekey fires it — so both engines observe it at the
	// same architectural point (table lookups only happen inside fetch
	// groups). Zero disables.
	rekeyPeriod uint64
	nextRekey   uint64

	// pfWalkCycles is the cost of one Precise Flush: unlike Complete
	// Flush's bulk flash-clear, a precise flush must walk every row
	// comparing stored thread IDs (the "complex hardware implementations"
	// of §4.1 observation 3). Modelled as a predictor-port stall of
	// rows/8 cycles; zero for every other mechanism.
	pfWalkCycles uint64
}

// New builds a core. The predictor must have been constructed against the
// same controller so flush/rotation events reach it.
func New(cfg Config, sched SchedulerConfig, ctrl *core.Controller, dir predictor.DirPredictor) *Core {
	if cfg.HWThreads < 1 || cfg.HWThreads > core.MaxHWThreads {
		panic("cpu: invalid hardware thread count")
	}
	c := &Core{
		cfg:   cfg,
		sched: sched,
		ctrl:  ctrl,
		dir:   dir,
		btb:   btb.New(cfg.BTB, ctrl),
		ras:   btb.NewRAS(cfg.RASDepth, ctrl),
		krng:  rng.NewXoshiro256(rng.Mix64(sched.Seed ^ 0xc0de)),
	}
	c.dirPU, _ = dir.(predictor.PredictUpdater)
	c.rekeyPeriod = ctrl.RekeyEvery()
	c.nextRekey = c.rekeyPeriod
	if ctrl.Options().Mechanism == core.PreciseFlush {
		entries := dir.StorageBits() / 8 // fallback: ~8 bits per entry
		if ec, ok := dir.(interface{ Entries() uint64 }); ok {
			entries = ec.Entries()
		}
		entries += c.btb.Entries()
		// A thread-ID-matching walk at 16 entries per cycle.
		c.pfWalkCycles = entries / 16
	}
	for i := 0; i < cfg.HWThreads; i++ {
		hc := &hwContext{
			id:   core.HWThread(i),
			priv: core.User,
			// Stagger timers so SMT threads do not flush synchronously.
			nextTimer: sched.TimerPeriod + uint64(i)*sched.TimerPeriod/uint64(cfg.HWThreads),
			kernel:    newSWThread(workload.NewGenerator(workload.KernelProfile(), sched.Seed), true),
		}
		c.hw = append(c.hw, hc)
	}
	return c
}

// Assign places programs on hardware contexts: programs[i] goes to
// context i%HWThreads, so a single-threaded core time-shares all of them
// and an SMT core runs one (or more) per way.
func (c *Core) Assign(programs ...workload.Program) {
	for i, p := range programs {
		hc := c.hw[i%c.cfg.HWThreads]
		hc.sw = append(hc.sw, newSWThread(p, false))
	}
	for _, hc := range c.hw {
		if len(hc.sw) == 0 {
			panic("cpu: hardware context without software thread")
		}
	}
}

// BTBUnit exposes the BTB for residency diagnostics.
func (c *Core) BTBUnit() *btb.BTB { return c.btb }

// Controller exposes the isolation controller for event statistics.
func (c *Core) Controller() *core.Controller { return c.ctrl }

// Cycles returns the global cycle counter.
func (c *Core) Cycles() uint64 { return c.cycle }

// ThreadStatsOf returns a copy of the stats of software thread idx on
// hardware context hw.
func (c *Core) ThreadStatsOf(hw, idx int) ThreadStats { return c.hw[hw].sw[idx].stats }

// ThreadCyclesOf returns the cycles attributed to software thread idx on
// hardware context hw (single-core attribution; see swThread).
func (c *Core) ThreadCyclesOf(hw, idx int) uint64 { return c.hw[hw].sw[idx].activeCycles }

// UserInstructions returns the user instructions retired across all
// software threads since the last stats reset — the running total a
// RunTotalInstructions goal is measured against, exposed so a
// cycle-limited run can be resumed toward an absolute goal.
func (c *Core) UserInstructions() uint64 {
	var n uint64
	for _, hc := range c.hw {
		for _, t := range hc.sw {
			n += t.stats.Instructions
		}
	}
	return n
}

// KernelStatsOf returns the kernel pseudo-thread stats of context hw.
func (c *Core) KernelStatsOf(hw int) ThreadStats { return c.hw[hw].kernel.stats }

// ResetStats zeroes all thread statistics and the BTB counters (cycle and
// scheduler state keep running) — call after warmup.
func (c *Core) ResetStats() {
	for _, hc := range c.hw {
		for _, t := range hc.sw {
			t.stats = ThreadStats{}
			t.activeCycles = 0
		}
		hc.kernel.stats = ThreadStats{}
	}
	c.btb.ResetStats()
}

// step advances one cycle: the next hardware context in strict round-
// robin order receives the fetch slot. A context inside its misprediction
// window still consumes its turn — the front end is fetching the wrong
// path on its behalf — so one thread's mispredictions cost the whole SMT
// core bandwidth rather than being silently absorbed by its siblings.
// Returns the number of user instructions retired this cycle.
//
//bpvet:hotpath
func (c *Core) step() uint64 {
	c.cycle++
	if len(c.hw) == 1 {
		// Single hardware context: the cycle belongs to the scheduled
		// software thread whether it fetches or stalls.
		c.hw[0].sw[c.hw[0].cur].activeCycles++
	}
	hc := c.hw[c.rr]
	c.rr = (c.rr + 1) % len(c.hw)
	if hc.stallUntil > c.cycle {
		return 0 // wrong-path fetch: the slot is burned
	}
	return c.fetchGroup(hc)
}

// fetchGroup fetches up to FetchWidth instructions for hc, stopping at a
// taken branch or a stall. Returns user instructions retired.
//
//bpvet:hotpath
func (c *Core) fetchGroup(hc *hwContext) uint64 {
	// Periodic re-key, taken at any fetch-group entry (kernel or user):
	// the hardware key-refresh timer does not care about privilege. The
	// fast engine clamps its gap skips to nextRekey so this entry is
	// never jumped over.
	if c.rekeyPeriod != 0 && c.cycle >= c.nextRekey {
		c.nextRekey += c.rekeyPeriod
		c.ctrl.PeriodicRekey()
	}
	// Timer interrupts are taken at user-mode fetch boundaries.
	if hc.kernelLeft == 0 && c.cycle >= hc.nextTimer {
		hc.nextTimer += c.sched.TimerPeriod
		c.enterKernel(hc)
		hc.pendingCtx = len(hc.sw) > 1
		return 0
	}
	var user uint64
	w := c.cfg.FetchWidth
	// The fetching stream cannot change mid-group: every transition that
	// reschedules (kernel entry/exit, syscall) also ends the group, so the
	// active() lookup is hoisted out of the per-instruction loop.
	t := hc.active()
	for w > 0 {
		if !t.evLoaded {
			t.load()
		}
		if t.gapLeft > 0 {
			take := t.gapLeft
			if take > w {
				take = w
			}
			t.gapLeft -= take
			w -= take
			t.stats.Instructions += uint64(take)
			if !t.kernel {
				user += uint64(take)
			}
			continue
		}
		// The branch instruction itself.
		w--
		t.stats.Instructions++
		t.stats.Branches++
		if !t.kernel {
			user++
		}
		redirect, stall := c.resolve(hc, t)
		t.evLoaded = false
		syscall := t.ev.Syscall && !t.kernel
		kernelExit := false
		if t.kernel {
			hc.kernelLeft--
			kernelExit = hc.kernelLeft == 0
		}
		if stall > 0 {
			hc.stallUntil = c.cycle + stall
		}
		if kernelExit {
			c.exitKernel(hc)
		}
		if syscall {
			c.enterKernel(hc)
		}
		// A stall, privilege transition, or taken branch ends the group.
		if stall > 0 || kernelExit || syscall || redirect {
			break
		}
	}
	return user
}

// enterKernel models a privilege switch into the kernel: the isolation
// event fires and the synthetic handler is scheduled.
//
//bpvet:hotpath
func (c *Core) enterKernel(hc *hwContext) {
	hc.priv = core.Kernel
	c.ctrl.PrivilegeChange(hc.id, core.Kernel)
	c.chargeFlushWalk(hc, true)
	// Handler length varies around the configured mean.
	mean := c.sched.KernelBranches
	hc.kernelLeft = mean/2 + c.krng.Intn(mean+1)
	cur := hc.sw[hc.cur]
	if !cur.kernel {
		cur.stats.Syscalls++
	}
}

// exitKernel returns to user mode, firing the privilege event (fresh user
// key under the encoding mechanisms — the §5.5 scenario 5 property), and
// performs any pending context switch.
//
//bpvet:hotpath
func (c *Core) exitKernel(hc *hwContext) {
	if hc.pendingCtx {
		hc.pendingCtx = false
		hc.cur = (hc.cur + 1) % len(hc.sw)
		c.ctrl.ContextSwitch(hc.id)
		c.chargeFlushWalk(hc, false)
	}
	hc.priv = core.User
	c.ctrl.PrivilegeChange(hc.id, core.User)
	c.chargeFlushWalk(hc, true)
}

// chargeFlushWalk stalls the context for the Precise Flush row walk when
// the event actually flushed.
//
//bpvet:hotpath
func (c *Core) chargeFlushWalk(hc *hwContext, privEvent bool) {
	if c.pfWalkCycles == 0 {
		return
	}
	if privEvent && !c.ctrl.Options().FlushOnPrivilege {
		return
	}
	if until := c.cycle + c.pfWalkCycles; until > hc.stallUntil {
		hc.stallUntil = until
	}
}

// resolve predicts and immediately resolves one branch, returning whether
// fetch redirects (taken) and the stall penalty in cycles.
//
//bpvet:hotpath
func (c *Core) resolve(hc *hwContext, t *swThread) (redirect bool, stall uint64) {
	d := core.Domain{Thread: hc.id, Priv: hc.priv}
	ev := &t.ev
	switch ev.Class {
	case predictor.CondDirect:
		var predTaken bool
		if c.dirPU != nil {
			predTaken = c.dirPU.PredictUpdate(d, ev.PC, ev.Taken)
		} else {
			predTaken = c.dir.Predict(d, ev.PC)
			c.dir.Update(d, ev.PC, ev.Taken)
		}
		t.stats.CondBranches++
		if predTaken != ev.Taken {
			t.stats.DirMisp++
		}
		effTaken := predTaken
		var predTarget uint64
		if predTaken {
			tgt, hit := c.btb.Lookup(d, ev.PC)
			if hit {
				predTarget = tgt
			} else {
				// No target available: the front end falls through.
				effTaken = false
			}
		}
		switch {
		case effTaken != ev.Taken:
			t.stats.EffMisp++
			stall = c.cfg.MispredictPenalty
		case effTaken && predTarget != ev.Target&targetMask:
			// False hit produced a garbage target.
			t.stats.TargMisp++
			stall = c.cfg.MispredictPenalty
		}
		if ev.Taken {
			c.btb.Update(d, ev.PC, ev.Target, ev.Class)
			redirect = true
		}

	case predictor.UncondDirect, predictor.Call:
		tgt, hit := c.btb.Lookup(d, ev.PC)
		if !hit || tgt != ev.Target&targetMask {
			// Direct target recomputed at decode: short redirect.
			t.stats.DecodeRedir++
			stall = c.cfg.BTBMissPenalty
		}
		c.btb.Update(d, ev.PC, ev.Target, ev.Class)
		if ev.Class == predictor.Call {
			c.ras.Push(d, ev.PC+4)
		}
		redirect = true

	case predictor.Indirect, predictor.IndirectCall:
		tgt, hit := c.btb.Lookup(d, ev.PC)
		if !hit || tgt != ev.Target&targetMask {
			// Indirect targets resolve at execute: full penalty.
			t.stats.TargMisp++
			t.stats.EffMisp++
			stall = c.cfg.MispredictPenalty
		}
		c.btb.Update(d, ev.PC, ev.Target, ev.Class)
		if ev.Class == predictor.IndirectCall {
			c.ras.Push(d, ev.PC+4)
		}
		redirect = true

	case predictor.Return:
		tgt, ok := c.ras.Pop(d)
		if !ok || tgt != ev.Target {
			t.stats.TargMisp++
			t.stats.EffMisp++
			stall = c.cfg.MispredictPenalty
		}
		redirect = true
	}
	return redirect, stall
}

// targetMask reflects the BTB's partial-target storage (32 bits in both
// configurations).
const targetMask = (1 << 32) - 1

// NoCycleLimit disables the cycle bound of the *Until run variants.
const NoCycleLimit = ^uint64(0)

// RunTargetInstructions runs until software thread 0 on hardware context
// 0 (the "target benchmark") retires n more user instructions, the
// paper's single-threaded measurement. It returns the elapsed cycles.
//
//bpvet:hotpath
func (c *Core) RunTargetInstructions(n uint64) uint64 {
	cyc, _ := c.RunTargetInstructionsUntil(n, NoCycleLimit)
	return cyc
}

// RunTargetInstructionsUntil runs until the target thread retires n more
// user instructions or the global cycle counter reaches cycleLimit,
// whichever comes first. Stopping on the cycle bound is exact and
// resumable: the core holds precisely the state the unlimited run holds
// when its cycle counter passes the same value, so a snapshot taken here
// and restored elsewhere continues the identical trajectory. It returns
// the elapsed cycles and whether the instruction goal was reached.
//
//bpvet:hotpath
func (c *Core) RunTargetInstructionsUntil(n, cycleLimit uint64) (uint64, bool) {
	start := c.cycle
	target := c.hw[0].sw[0]
	goal := target.stats.Instructions + n
	switch {
	case c.engine == EngineReference:
		for target.stats.Instructions < goal && c.cycle < cycleLimit {
			c.step()
		}
	case len(c.hw) == 1:
		c.fastRun1(true, goal, cycleLimit)
	default:
		c.fastRunN(true, goal, cycleLimit)
	}
	return c.cycle - start, target.stats.Instructions >= goal
}

// RunTotalInstructions runs until n more user instructions retire across
// all threads, the paper's SMT measurement ("the execution cycles of the
// next two billion instructions executed by either thread"). It returns
// the elapsed cycles.
//
//bpvet:hotpath
func (c *Core) RunTotalInstructions(n uint64) uint64 {
	cyc, _ := c.RunTotalInstructionsUntil(n, NoCycleLimit)
	return cyc
}

// RunTotalInstructionsUntil is RunTotalInstructions with the same exact,
// resumable cycle bound as RunTargetInstructionsUntil. It returns the
// elapsed cycles and whether the instruction goal was reached.
//
//bpvet:hotpath
func (c *Core) RunTotalInstructionsUntil(n, cycleLimit uint64) (uint64, bool) {
	start := c.cycle
	var done uint64
	switch {
	case c.engine == EngineReference:
		for done < n && c.cycle < cycleLimit {
			done += c.step()
		}
	case len(c.hw) == 1:
		done = c.fastRun1(false, n, cycleLimit)
	default:
		done = c.fastRunN(false, n, cycleLimit)
	}
	return c.cycle - start, done >= n
}

// ScheduleRekey sets the cycle at which the next periodic re-key fires.
// Restore overwrites the schedule with the donor core's, which is
// meaningless when the snapshot was taken under a different (or absent)
// re-key period — the fork path calls this after restoring a shared
// prefix to put the member's own schedule in force.
func (c *Core) ScheduleRekey(next uint64) { c.nextRekey = next }

// Snapshottable reports whether every stateful component of the core
// implements the snap seam — in particular, whether the assigned
// programs do. Snapshot panics when this is false.
func (c *Core) Snapshottable() bool {
	if _, ok := c.dir.(snap.Snapshotter); !ok {
		return false
	}
	for _, hc := range c.hw {
		for _, t := range hc.sw {
			if _, ok := t.prog.(snap.Snapshotter); !ok {
				return false
			}
		}
		if _, ok := hc.kernel.prog.(snap.Snapshotter); !ok {
			return false
		}
	}
	return true
}

// Snapshot serializes the complete mutable simulator state: the cycle
// and arbitration counters, the kernel RNG, the controller (keys and
// event counters), the direction predictor, BTB, RAS, and every
// hardware context's scheduling state and software threads (stats,
// event rings, program cursors). Static wiring — configs, table
// geometry, thread assignment — is not serialized; Restore requires a
// core built from the identical spec. Snapshot must only be taken at a
// run boundary (between Run* calls): that is a cycle boundary, where no
// predict-to-update scratch state is live.
func (c *Core) Snapshot(w *snap.Writer) {
	if !c.Snapshottable() {
		panic("cpu: Snapshot on a core with non-snapshottable programs or predictor")
	}
	w.U64(c.cycle)
	w.U32(uint32(c.rr))
	w.U64(c.nextRekey)
	c.krng.Snapshot(w)
	c.ctrl.Snapshot(w)
	c.dir.(snap.Snapshotter).Snapshot(w)
	c.btb.Snapshot(w)
	c.ras.Snapshot(w)
	w.U32(uint32(len(c.hw)))
	for _, hc := range c.hw {
		hc.snapshot(w)
	}
}

// Restore replaces the core's mutable state from a snapshot taken of a
// core built from the same spec. On any mismatch the reader's error is
// set and the core is left partially restored — callers must discard it.
func (c *Core) Restore(r *snap.Reader) {
	c.cycle = r.U64()
	c.rr = int(r.U32())
	c.nextRekey = r.U64()
	c.krng.Restore(r)
	c.ctrl.Restore(r)
	if s, ok := c.dir.(snap.Snapshotter); ok {
		s.Restore(r)
	} else {
		r.Fail("cpu: predictor %s has no snapshot seam", c.dir.Name())
		return
	}
	c.btb.Restore(r)
	c.ras.Restore(r)
	if n := int(r.U32()); n != len(c.hw) {
		r.Fail("cpu: snapshot has %d hardware contexts, core has %d", n, len(c.hw))
		return
	}
	if c.rr < 0 || c.rr >= len(c.hw) {
		r.Fail("cpu: round-robin pointer %d out of range", c.rr)
		return
	}
	for _, hc := range c.hw {
		hc.restore(r)
		if r.Err() != nil {
			return
		}
	}
}

// snapshot writes one hardware context's scheduling state and threads.
func (hc *hwContext) snapshot(w *snap.Writer) {
	w.U8(uint8(hc.priv))
	w.U64(hc.stallUntil)
	w.U64(hc.nextTimer)
	w.I64(int64(hc.kernelLeft))
	w.Bool(hc.pendingCtx)
	w.U32(uint32(hc.cur))
	w.U32(uint32(len(hc.sw)))
	for _, t := range hc.sw {
		t.snapshot(w)
	}
	hc.kernel.snapshot(w)
}

func (hc *hwContext) restore(r *snap.Reader) {
	p := r.U8()
	if p > uint8(core.Kernel) {
		r.Fail("cpu: invalid privilege %d", p)
		return
	}
	hc.priv = core.Privilege(p)
	hc.stallUntil = r.U64()
	hc.nextTimer = r.U64()
	hc.kernelLeft = int(r.I64())
	hc.pendingCtx = r.Bool()
	hc.cur = int(r.U32())
	if n := int(r.U32()); n != len(hc.sw) {
		r.Fail("cpu: snapshot has %d software threads, context has %d", n, len(hc.sw))
		return
	}
	if hc.cur < 0 || hc.cur >= len(hc.sw) {
		r.Fail("cpu: scheduled thread %d out of range", hc.cur)
		return
	}
	for _, t := range hc.sw {
		t.restore(r)
		if r.Err() != nil {
			return
		}
	}
	hc.kernel.restore(r)
}

// snapshot writes one software thread: stats, the pending event and
// fetch cursor, the unconsumed tail of the event ring, and the program's
// own cursor state. Entries before ringPos are stale (never read again),
// so they are omitted — a re-snapshot of a restored thread is
// byte-identical to the original.
func (t *swThread) snapshot(w *snap.Writer) {
	s := &t.stats
	w.U64(s.Instructions)
	w.U64(s.Branches)
	w.U64(s.CondBranches)
	w.U64(s.DirMisp)
	w.U64(s.EffMisp)
	w.U64(s.TargMisp)
	w.U64(s.DecodeRedir)
	w.U64(s.Syscalls)
	t.ev.Snapshot(w)
	w.I64(int64(t.gapLeft))
	w.Bool(t.evLoaded)
	w.U64(t.activeCycles)
	w.U32(uint32(t.ringPos))
	w.U32(uint32(t.ringLen))
	for i := t.ringPos; i < t.ringLen; i++ {
		t.ring[i].Snapshot(w)
	}
	t.prog.(snap.Snapshotter).Snapshot(w)
}

func (t *swThread) restore(r *snap.Reader) {
	s := &t.stats
	s.Instructions = r.U64()
	s.Branches = r.U64()
	s.CondBranches = r.U64()
	s.DirMisp = r.U64()
	s.EffMisp = r.U64()
	s.TargMisp = r.U64()
	s.DecodeRedir = r.U64()
	s.Syscalls = r.U64()
	t.ev.Restore(r)
	t.gapLeft = int(r.I64())
	t.evLoaded = r.Bool()
	t.activeCycles = r.U64()
	pos, n := int(r.U32()), int(r.U32())
	if r.Err() != nil {
		return
	}
	if pos < 0 || n < pos || n > len(t.ring) {
		r.Fail("cpu: ring cursor %d/%d out of range", pos, n)
		return
	}
	t.ringPos, t.ringLen = pos, n
	for i := pos; i < n; i++ {
		t.ring[i].Restore(r)
	}
	if p, ok := t.prog.(snap.Snapshotter); ok {
		p.Restore(r)
	} else {
		r.Fail("cpu: program %s has no snapshot seam", t.prog.Name())
	}
}
