// Package runner provides a minimal bounded worker pool for fanning
// independent, CPU-bound jobs across cores while keeping results in a
// deterministic order.
//
// It is the execution substrate of the experiment engine
// (internal/experiment): simulations are pure functions of their spec, so
// they can run in any order on any number of workers and still produce
// byte-identical reports.
package runner

import (
	"runtime"
	"sync"
)

// DefaultWorkers is the worker count used when a caller passes n <= 0:
// one worker per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Map runs fn(i) for every i in [0, n) using at most workers goroutines
// and returns the results indexed by i. Order of execution is undefined;
// order of results is not. workers <= 0 selects DefaultWorkers. fn must
// be safe for concurrent use.
func Map[T any](n, workers int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers == 1 {
		// Serial fast path: no goroutines, exact same results.
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var (
		wg   sync.WaitGroup
		next int
		mu   sync.Mutex
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}
