package runner

import (
	"sync/atomic"
	"testing"
)

func TestMapOrderPreserved(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		got := Map(25, workers, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map(0, 4, func(i int) int { return i }); got != nil {
		t.Fatalf("Map(0) = %v, want nil", got)
	}
}

func TestMapRunsEachIndexOnce(t *testing.T) {
	var calls atomic.Int64
	n := 97
	Map(n, 7, func(i int) int {
		calls.Add(1)
		return i
	})
	if calls.Load() != int64(n) {
		t.Fatalf("fn called %d times, want %d", calls.Load(), n)
	}
}

func TestMapDefaultWorkers(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatal("DefaultWorkers < 1")
	}
	got := Map(10, 0, func(i int) int { return i + 1 })
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i+1)
		}
	}
}
