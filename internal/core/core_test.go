package core

import (
	"testing"
	"testing/quick"
)

func TestCodecRoundTrip(t *testing.T) {
	codecs := []Codec{XORCodec{}, RotXORCodec{}, IdentityCodec{}}
	for _, c := range codecs {
		c := c
		f := func(v uint64, k uint64) bool {
			return c.Decode(c.Encode(v, Key(k)), Key(k)) == v
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

func TestCodecWrongKeyGarbles(t *testing.T) {
	// Decoding with a different key must not return the original value
	// (except with negligible probability; test fixed vectors).
	for _, c := range []Codec{XORCodec{}, RotXORCodec{}} {
		enc := c.Encode(0xdeadbeef, Key(0x1234567890abcdef))
		dec := c.Decode(enc, Key(0xfedcba0987654321))
		if dec == 0xdeadbeef {
			t.Errorf("%s: wrong key still decodes", c.Name())
		}
	}
}

func TestXORCodecIsInvolution(t *testing.T) {
	f := func(v, k uint64) bool {
		c := XORCodec{}
		return c.Encode(v, Key(k)) == c.Decode(v, Key(k))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScramblerBijective(t *testing.T) {
	// Every scrambler must be a bijection over the index space for any key.
	scramblers := []Scrambler{XORScrambler{}, FeistelScrambler{}, IdentityScrambler{}}
	for _, s := range scramblers {
		for _, nbits := range []uint{1, 2, 7, 8, 10} {
			for _, k := range []Key{0, 1, 0xdeadbeefcafebabe, ^Key(0)} {
				seen := make([]bool, 1<<nbits)
				for i := uint64(0); i < 1<<nbits; i++ {
					out := s.Scramble(i, k, nbits)
					if out >= 1<<nbits {
						t.Fatalf("%s nbits=%d: output %d out of range", s.Name(), nbits, out)
					}
					if seen[out] {
						t.Fatalf("%s nbits=%d key=%x: collision at %d", s.Name(), nbits, k, out)
					}
					seen[out] = true
				}
			}
		}
	}
}

func TestXORScramblerKeyDependence(t *testing.T) {
	s := XORScrambler{}
	if s.Scramble(5, 1, 10) == s.Scramble(5, 2, 10) {
		t.Fatal("different keys map index identically")
	}
}

func TestKeyFileRotatesOnContextSwitch(t *testing.T) {
	c := NewController(OptionsFor(NoisyXOR), 1)
	d := Domain{Thread: 0, Priv: User}
	g := c.Guard(0, StructAll)
	before := g.ContentKey(d)
	c.ContextSwitch(0)
	if g.ContentKey(d) == before {
		t.Fatal("content key unchanged after context switch")
	}
}

func TestKeyFilePerThreadIsolation(t *testing.T) {
	c := NewController(OptionsFor(NoisyXOR), 1)
	g := c.Guard(0, StructAll)
	d0 := Domain{Thread: 0, Priv: User}
	d1 := Domain{Thread: 1, Priv: User}
	if g.ContentKey(d0) == g.ContentKey(d1) {
		t.Fatal("threads share a content key")
	}
	before := g.ContentKey(d1)
	c.ContextSwitch(0)
	if g.ContentKey(d1) != before {
		t.Fatal("thread 0's switch rotated thread 1's key")
	}
}

func TestKeyFilePerPrivilegeKeys(t *testing.T) {
	c := NewController(OptionsFor(NoisyXOR), 1)
	g := c.Guard(0, StructAll)
	du := Domain{Thread: 0, Priv: User}
	dk := Domain{Thread: 0, Priv: Kernel}
	if g.ContentKey(du) == g.ContentKey(dk) {
		t.Fatal("user and kernel share a content key")
	}
}

func TestPrivilegeRotationPolicy(t *testing.T) {
	on := OptionsFor(NoisyXOR)
	off := OptionsFor(NoisyXOR)
	off.RotateOnPrivilege = false

	cOn := NewController(on, 1)
	gOn := cOn.Guard(0, StructAll)
	dk := Domain{Thread: 0, Priv: Kernel}
	before := gOn.ContentKey(dk)
	cOn.PrivilegeChange(0, Kernel)
	if gOn.ContentKey(dk) == before {
		t.Fatal("RotateOnPrivilege=true did not rotate")
	}

	cOff := NewController(off, 1)
	gOff := cOff.Guard(0, StructAll)
	before = gOff.ContentKey(dk)
	cOff.PrivilegeChange(0, Kernel)
	if gOff.ContentKey(dk) != before {
		t.Fatal("RotateOnPrivilege=false rotated anyway")
	}
}

func TestBaselineHasNoKeys(t *testing.T) {
	c := NewController(OptionsFor(Baseline), 1)
	g := c.Guard(99, StructAll)
	d := Domain{Thread: 0, Priv: User}
	if g.ContentKey(d) != 0 || g.IndexKey(d) != 0 {
		t.Fatal("baseline exposes nonzero keys")
	}
	if g.Encode(42, d) != 42 || g.ScrambleIndex(7, d, 8) != 7 {
		t.Fatal("baseline transforms data")
	}
}

func TestXORMechanismDoesNotScramble(t *testing.T) {
	c := NewController(OptionsFor(XOR), 1)
	g := c.Guard(0, StructAll)
	d := Domain{Thread: 0, Priv: User}
	if g.ScrambleIndex(7, d, 8) != 7 {
		t.Fatal("XOR-BP must not scramble the index")
	}
	if g.Encode(42, d) == 42 {
		t.Fatal("XOR-BP must encode contents")
	}
}

type fakeTable struct {
	all     int
	threads []HWThread
}

func (f *fakeTable) FlushAll()              { f.all++ }
func (f *fakeTable) FlushThread(t HWThread) { f.threads = append(f.threads, t) }

func TestCompleteFlushBroadcast(t *testing.T) {
	c := NewController(OptionsFor(CompleteFlush), 1)
	ft := &fakeTable{}
	c.Register(ft, StructAll)
	c.ContextSwitch(0)
	if ft.all != 1 {
		t.Fatalf("FlushAll called %d times, want 1", ft.all)
	}
	c.PrivilegeChange(0, Kernel)
	if ft.all != 2 {
		t.Fatalf("privilege change: FlushAll called %d times, want 2", ft.all)
	}
}

func TestCompleteFlushPrivilegePolicy(t *testing.T) {
	o := OptionsFor(CompleteFlush)
	o.FlushOnPrivilege = false
	c := NewController(o, 1)
	ft := &fakeTable{}
	c.Register(ft, StructAll)
	c.PrivilegeChange(0, Kernel)
	if ft.all != 0 {
		t.Fatal("FlushOnPrivilege=false still flushed")
	}
}

func TestPreciseFlushTargetsThread(t *testing.T) {
	c := NewController(OptionsFor(PreciseFlush), 1)
	ft := &fakeTable{}
	c.Register(ft, StructAll)
	c.ContextSwitch(2)
	if ft.all != 0 || len(ft.threads) != 1 || ft.threads[0] != 2 {
		t.Fatalf("precise flush wrong: all=%d threads=%v", ft.all, ft.threads)
	}
}

func TestEncodingMechanismsDoNotFlush(t *testing.T) {
	for _, m := range []Mechanism{XOR, NoisyXOR} {
		c := NewController(OptionsFor(m), 1)
		ft := &fakeTable{}
		c.Register(ft, StructAll)
		c.ContextSwitch(0)
		c.PrivilegeChange(0, Kernel)
		if ft.all != 0 || len(ft.threads) != 0 {
			t.Errorf("%s flushed tables", m)
		}
	}
}

func TestPeriodicFlush(t *testing.T) {
	c := NewController(OptionsFor(CompleteFlush), 1)
	ft := &fakeTable{}
	c.Register(ft, StructAll)
	c.PeriodicFlush()
	if ft.all != 1 {
		t.Fatal("PeriodicFlush did not flush")
	}
	cb := NewController(OptionsFor(NoisyXOR), 1)
	cb.Register(ft, StructAll)
	cb.PeriodicFlush()
	if ft.all != 1 {
		t.Fatal("PeriodicFlush flushed under an encoding mechanism")
	}
}

func TestGuardSaltDiversifiesTables(t *testing.T) {
	c := NewController(OptionsFor(NoisyXOR), 1)
	g1 := c.Guard(1, StructAll)
	g2 := c.Guard(2, StructAll)
	d := Domain{Thread: 0, Priv: User}
	if g1.ContentKey(d) == g2.ContentKey(d) {
		t.Fatal("different tables share effective content keys")
	}
	if g1.IndexKey(d) == g2.IndexKey(d) {
		t.Fatal("different tables share effective index keys")
	}
}

func TestGuardWordRoundTrip(t *testing.T) {
	for _, enhanced := range []bool{false, true} {
		o := OptionsFor(NoisyXOR)
		o.EnhancedPHT = enhanced
		c := NewController(o, 1)
		g := c.Guard(0, StructAll)
		d := Domain{Thread: 0, Priv: User}
		f := func(v uint64, w uint16) bool {
			word := uint64(w)
			return g.DecodeWord(g.EncodeWord(v, d, word), d, word) == v
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("enhanced=%v: %v", enhanced, err)
		}
	}
}

func TestEnhancedWordKeysDiffer(t *testing.T) {
	o := OptionsFor(NoisyXOR)
	o.EnhancedPHT = true
	c := NewController(o, 1)
	g := c.Guard(0, StructAll)
	d := Domain{Thread: 0, Priv: User}
	if g.EncodeWord(0, d, 0) == g.EncodeWord(0, d, 1) {
		t.Fatal("enhanced schedule reuses the key across words")
	}
	// Plain (non-enhanced) XOR-PHT uses one key for all words.
	o.EnhancedPHT = false
	c2 := NewController(o, 1)
	g2 := c2.Guard(0, StructAll)
	if g2.EncodeWord(0, d, 0) != g2.EncodeWord(0, d, 1) {
		t.Fatal("plain schedule should reuse the key across words")
	}
}

func TestStatsCounting(t *testing.T) {
	c := NewController(OptionsFor(NoisyXOR), 1)
	c.ContextSwitch(0)
	c.ContextSwitch(1)
	c.PrivilegeChange(0, Kernel)
	ctx, priv, flushes, rot := c.Stats()
	if ctx != 2 || priv != 1 || flushes != 0 {
		t.Fatalf("stats ctx=%d priv=%d flushes=%d", ctx, priv, flushes)
	}
	// Two context switches rotate all privilege levels (3 each); one
	// privilege change rotates one domain.
	if rot != 2*3+1 {
		t.Fatalf("rotations = %d, want 7", rot)
	}
}

func TestMechanismPredicates(t *testing.T) {
	if !XOR.Encodes() || !NoisyXOR.Encodes() || Baseline.Encodes() {
		t.Fatal("Encodes predicate wrong")
	}
	if XOR.ScramblesIndex() || !NoisyXOR.ScramblesIndex() {
		t.Fatal("ScramblesIndex predicate wrong")
	}
	if !CompleteFlush.Flushes() || !PreciseFlush.Flushes() || NoisyXOR.Flushes() {
		t.Fatal("Flushes predicate wrong")
	}
}

func TestMechanismAndPrivilegeStrings(t *testing.T) {
	if NoisyXOR.String() != "Noisy-XOR-BP" || CompleteFlush.String() != "CompleteFlush" {
		t.Fatal("mechanism names wrong")
	}
	if User.String() != "user" || Kernel.String() != "kernel" || Hypervisor.String() != "hypervisor" {
		t.Fatal("privilege names wrong")
	}
	d := Domain{Thread: 3, Priv: Kernel}
	if d.String() != "hw3/kernel" {
		t.Fatalf("domain string = %q", d.String())
	}
}

func TestControllerDeterminism(t *testing.T) {
	mk := func() Key {
		c := NewController(OptionsFor(NoisyXOR), 42)
		c.ContextSwitch(0)
		c.PrivilegeChange(0, Kernel)
		return c.Guard(7, StructAll).ContentKey(Domain{Thread: 0, Priv: Kernel})
	}
	if mk() != mk() {
		t.Fatal("controller key evolution is not deterministic")
	}
}

func TestSingleStepDetector(t *testing.T) {
	d := NewSingleStepDetector()
	// Normal syscall cadence never trips it.
	for i := 0; i < 100; i++ {
		if d.KernelEntry(50000) {
			t.Fatal("detector tripped on normal progress")
		}
	}
	// Single-step cadence trips after Window starved intervals.
	for i := 0; i < d.Window-1; i++ {
		if d.KernelEntry(1) {
			t.Fatalf("tripped too early at interval %d", i)
		}
	}
	if !d.KernelEntry(1) {
		t.Fatal("detector did not trip after Window starved intervals")
	}
	if !d.Bypass() {
		t.Fatal("Bypass should report active")
	}
	// One healthy interval re-arms updates.
	d.KernelEntry(50000)
	if d.Bypass() {
		t.Fatal("Bypass should clear after normal progress")
	}
	d.Reset()
	if d.Bypass() {
		t.Fatal("Reset should clear the detector")
	}
}
