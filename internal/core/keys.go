package core

import (
	"xorbp/internal/rng"
	"xorbp/internal/snap"
)

// KeyFile models the dedicated per-hardware-thread key registers of §5.4.
// Each (hardware thread, privilege level) domain owns a content key and an
// index key. The paper notes that in practice "the hardware random number
// generator can generate a single random number whose different (possibly
// overlapping) portions are used as keys in content and index
// randomization" — the key file draws one 64-bit value per rotation and
// derives both keys from it the same way.
//
// Rotation events:
//
//   - context switch on a hardware thread: all of that thread's keys are
//     regenerated (the incoming software thread must not be able to decode
//     the outgoing thread's state);
//   - privilege change: the key of the *destination* (thread, privilege)
//     domain is regenerated when Options.RotateOnPrivilege is set, which is
//     the paper's design. With it disabled, each privilege level keeps a
//     stable key per scheduling quantum — the ablation discussed with
//     Table 4.
type KeyFile struct {
	hwrng   *rng.HWRNG
	content [MaxHWThreads][numPrivileges]Key
	index   [MaxHWThreads][numPrivileges]Key

	rotateOnPriv bool
	rotations    uint64 // statistics: number of key regenerations
}

// NewKeyFile returns a key file with freshly drawn keys for every domain.
func NewKeyFile(hwrng *rng.HWRNG, rotateOnPriv bool) *KeyFile {
	kf := &KeyFile{hwrng: hwrng, rotateOnPriv: rotateOnPriv}
	for t := 0; t < MaxHWThreads; t++ {
		for p := Privilege(0); p < numPrivileges; p++ {
			kf.regenerate(HWThread(t), p)
		}
	}
	kf.rotations = 0 // initial fill is not an event
	return kf
}

// regenerate draws one hardware random number and derives the domain's
// content and index keys from it.
func (kf *KeyFile) regenerate(t HWThread, p Privilege) {
	r := kf.hwrng.Draw()
	kf.content[t][p] = Key(r)
	// The index key is a different portion of the same draw (§5.3): mix so
	// the two keys do not share low bits.
	kf.index[t][p] = Key(rng.Mix64(r))
	kf.rotations++
}

// Content returns the content key for a domain.
func (kf *KeyFile) Content(d Domain) Key { return kf.content[d.Thread][d.Priv] }

// Index returns the index key for a domain.
func (kf *KeyFile) Index(d Domain) Key { return kf.index[d.Thread][d.Priv] }

// OnContextSwitch regenerates every privilege level's keys for the
// hardware thread receiving a new software thread.
func (kf *KeyFile) OnContextSwitch(t HWThread) {
	for p := Privilege(0); p < numPrivileges; p++ {
		kf.regenerate(t, p)
	}
}

// OnPrivilegeChange regenerates the destination domain's keys if the
// rotate-on-privilege policy is active.
func (kf *KeyFile) OnPrivilegeChange(t HWThread, to Privilege) {
	if kf.rotateOnPriv {
		kf.regenerate(t, to)
	}
}

// RotateAll regenerates every (thread, privilege) domain's keys in a
// fixed order. This is the periodic re-key event: unlike the scheduling
// rotations it has no single affected thread, so all domains rotate —
// after the event no software thread can decode any pre-event state.
func (kf *KeyFile) RotateAll() {
	for t := 0; t < MaxHWThreads; t++ {
		for p := Privilege(0); p < numPrivileges; p++ {
			kf.regenerate(HWThread(t), p)
		}
	}
}

// Rotations returns the number of key regenerations since construction
// (excluding the initial fill).
func (kf *KeyFile) Rotations() uint64 { return kf.rotations }

// Snapshot writes the live keys, the rotation count and the entropy
// stream position. The rotate-on-privilege policy is static configuration
// and is not serialized.
func (kf *KeyFile) Snapshot(w *snap.Writer) {
	for t := 0; t < MaxHWThreads; t++ {
		for p := Privilege(0); p < numPrivileges; p++ {
			w.U64(uint64(kf.content[t][p]))
			w.U64(uint64(kf.index[t][p]))
		}
	}
	w.U64(kf.rotations)
	kf.hwrng.Snapshot(w)
}

// Restore replaces the live keys and entropy stream position.
func (kf *KeyFile) Restore(r *snap.Reader) {
	for t := 0; t < MaxHWThreads; t++ {
		for p := Privilege(0); p < numPrivileges; p++ {
			kf.content[t][p] = Key(r.U64())
			kf.index[t][p] = Key(r.U64())
		}
	}
	kf.rotations = r.U64()
	kf.hwrng.Restore(r)
}
