package core

import "math/bits"

// Key is a thread-private random number used for content or index
// encoding. In hardware it lives in a dedicated register per hardware
// thread, invisible to software (§5.4). 64 bits covers the widest word any
// table in this repository encodes.
type Key uint64

// Codec is the reversible, lightweight encoding applied to table contents.
// The paper's only requirement is that encode/decode "are easily
// reversible ... lightweight enough to not cause critical path timing
// problems" (§5.4). Encode and Decode must be exact inverses for every
// (value, key) pair; values wider than the table's physical word are
// masked by the caller.
type Codec interface {
	// Encode transforms a raw value with the key before it is stored.
	Encode(v uint64, k Key) uint64
	// Decode inverts Encode after a value is read.
	Decode(v uint64, k Key) uint64
	// Name identifies the codec in reports.
	Name() string
}

// XORCodec is the paper's running example: a plain XOR with the key.
// Encoding and decoding are the same operation.
type XORCodec struct{}

// Encode XORs v with k.
//
//bpvet:hotpath
func (XORCodec) Encode(v uint64, k Key) uint64 { return v ^ uint64(k) }

// Decode XORs v with k (XOR is an involution).
//
//bpvet:hotpath
func (XORCodec) Decode(v uint64, k Key) uint64 { return v ^ uint64(k) }

// Name returns "xor".
func (XORCodec) Name() string { return "xor" }

// RotXORCodec implements the strengthened option from §5.4 ("Adding
// shifting and/or scrambling in the process"): the value is rotated by a
// key-dependent amount and then XORed with the key. Still a single-cycle
// friendly operation (a barrel rotate plus an XOR), but the bit positions
// no longer line up between domains, which defeats the reference-branch
// corner case of §5.5 scenario 4 for narrow fields.
type RotXORCodec struct{}

// rotAmount derives a 6-bit rotate distance from the key's high bits so it
// is independent of the XOR mask bits used for low-width fields.
func rotAmount(k Key) int { return int(uint64(k)>>58) & 63 }

// Encode rotates v left by a key-derived amount, then XORs with k.
//
//bpvet:hotpath
func (RotXORCodec) Encode(v uint64, k Key) uint64 {
	return bits.RotateLeft64(v, rotAmount(k)) ^ uint64(k)
}

// Decode inverts Encode: XOR first, then rotate right.
//
//bpvet:hotpath
func (RotXORCodec) Decode(v uint64, k Key) uint64 {
	return bits.RotateLeft64(v^uint64(k), -rotAmount(k))
}

// Name returns "rotxor".
func (RotXORCodec) Name() string { return "rotxor" }

// IdentityCodec stores values unmodified. It is the baseline (no
// protection) configuration and is also useful in tests.
type IdentityCodec struct{}

// Encode returns v unchanged.
//
//bpvet:hotpath
func (IdentityCodec) Encode(v uint64, _ Key) uint64 { return v }

// Decode returns v unchanged.
//
//bpvet:hotpath
func (IdentityCodec) Decode(v uint64, _ Key) uint64 { return v }

// Name returns "identity".
func (IdentityCodec) Name() string { return "identity" }

// Scrambler is the index encoding of Noisy-XOR-BP (§5.3): a bijection over
// table indices parameterized by the thread-private index key. Bijectivity
// is required so distinct branches cannot be made to share an entry by the
// scrambling itself (capacity is preserved; only the mapping moves).
type Scrambler interface {
	// Scramble maps idx (already reduced to nbits) to the physical index,
	// using key k. The result must stay within nbits.
	Scramble(idx uint64, k Key, nbits uint) uint64
	// Name identifies the scrambler in reports.
	Name() string
}

// XORScrambler is the paper's index encoding: "The index key is XORed with
// the lower part of the PC to generate the index" (§5.3).
type XORScrambler struct{}

// Scramble XORs the index with the low bits of the key.
//
//bpvet:hotpath
func (XORScrambler) Scramble(idx uint64, k Key, nbits uint) uint64 {
	return (idx ^ uint64(k)) & mask(nbits)
}

// Name returns "xor".
func (XORScrambler) Name() string { return "xor" }

// FeistelScrambler is a two-round Feistel network over the index bits,
// keyed by the index key. It is a stronger bijection than XOR (an attacker
// observing collisions cannot linearly recover the key) at the cost of two
// small round functions — still trivially pipeline-friendly. Included as
// the "small lookup tables are all possible options" extension of §5.4.
type FeistelScrambler struct{}

// Scramble applies two Feistel rounds. For odd widths the left half gets
// the extra bit.
//
//bpvet:hotpath
func (FeistelScrambler) Scramble(idx uint64, k Key, nbits uint) uint64 {
	if nbits < 2 {
		return (idx ^ uint64(k)) & mask(nbits)
	}
	lw := (nbits + 1) / 2 // left half width (gets the extra bit)
	rw := nbits - lw      // right half width
	k0 := uint64(k)
	k1 := uint64(k) >> 32
	left, right := idx>>rw, idx&mask(rw)
	// Unbalanced Feistel without a final swap: each step is invertible by
	// re-deriving the round function from the already-known half.
	left = (left ^ feistelF(right, k0)) & mask(lw)
	right = (right ^ feistelF(left, k1)) & mask(rw)
	return (left<<rw | right) & mask(nbits)
}

// feistelF is the round function: a cheap nonlinear mix of half-index and
// key material.
func feistelF(x, k uint64) uint64 {
	x = x*0x9e3779b97f4a7c15 + k
	return x ^ (x >> 29)
}

// Name returns "feistel".
func (FeistelScrambler) Name() string { return "feistel" }

// IdentityScrambler performs no index encoding (XOR-BP without the noisy
// index, and the baseline).
type IdentityScrambler struct{}

// Scramble returns idx unchanged (masked to nbits).
//
//bpvet:hotpath
func (IdentityScrambler) Scramble(idx uint64, _ Key, nbits uint) uint64 {
	return idx & mask(nbits)
}

// Name returns "identity".
func (IdentityScrambler) Name() string { return "identity" }

func mask(n uint) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (1 << n) - 1
}

// CodecByName resolves a codec's wire name (its Name() value) to an
// instance. Every codec is a stateless struct, so the shared instances
// returned here are safe to embed in any number of Options. This is the
// registry the distributed work protocol uses to reconstruct Options
// from their canonical wire form.
func CodecByName(name string) (Codec, bool) {
	switch name {
	case XORCodec{}.Name():
		return XORCodec{}, true
	case RotXORCodec{}.Name():
		return RotXORCodec{}, true
	case IdentityCodec{}.Name():
		return IdentityCodec{}, true
	}
	return nil, false
}

// ScramblerByName resolves a scrambler's wire name (its Name() value) to
// an instance, mirroring CodecByName.
func ScramblerByName(name string) (Scrambler, bool) {
	switch name {
	case XORScrambler{}.Name():
		return XORScrambler{}, true
	case FeistelScrambler{}.Name():
		return FeistelScrambler{}, true
	case IdentityScrambler{}.Name():
		return IdentityScrambler{}, true
	}
	return nil, false
}
