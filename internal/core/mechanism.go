package core

import "fmt"

// Mechanism selects which isolation defense the predictor stack applies.
// The values cover every configuration evaluated in the paper.
type Mechanism int

// The isolation mechanisms of §4 and §5.
const (
	// Baseline: shared tables, no isolation (the vulnerable design).
	Baseline Mechanism = iota
	// CompleteFlush: flush every table on a switch event (§4.1).
	CompleteFlush
	// PreciseFlush: per-entry thread IDs; flush only the switching
	// thread's entries (§4.1 observation 3).
	PreciseFlush
	// XOR: content encoding only (XOR-BP, §5.1–5.2).
	XOR
	// NoisyXOR: content encoding plus randomized index (Noisy-XOR-BP,
	// §5.3). This is the paper's full proposal.
	NoisyXOR
)

// String returns the paper's name for the mechanism.
func (m Mechanism) String() string {
	switch m {
	case Baseline:
		return "Baseline"
	case CompleteFlush:
		return "CompleteFlush"
	case PreciseFlush:
		return "PreciseFlush"
	case XOR:
		return "XOR-BP"
	case NoisyXOR:
		return "Noisy-XOR-BP"
	default:
		return fmt.Sprintf("Mechanism(%d)", int(m))
	}
}

// Encodes reports whether the mechanism applies content encoding.
func (m Mechanism) Encodes() bool { return m == XOR || m == NoisyXOR }

// ScramblesIndex reports whether the mechanism applies index encoding.
func (m Mechanism) ScramblesIndex() bool { return m == NoisyXOR }

// Flushes reports whether the mechanism clears table state on switches.
func (m Mechanism) Flushes() bool {
	return m == CompleteFlush || m == PreciseFlush
}

// Structure identifies a class of predictor tables for scoping the
// mechanism. The paper evaluates BTB-only isolation (XOR-BTB, Figure 7),
// PHT-only isolation (XOR-PHT, Figure 8) and the combination (XOR-BP,
// Figure 9).
type Structure uint8

// Structure classes.
const (
	// StructBTB covers the branch target buffer.
	StructBTB Structure = 1 << iota
	// StructPHT covers every direction-predictor table.
	StructPHT
	// StructRAS covers the return address stack.
	StructRAS
	// StructAll covers everything (the default scope).
	StructAll = StructBTB | StructPHT | StructRAS
)

// String names the structure set.
func (s Structure) String() string {
	switch s {
	case StructBTB:
		return "BTB"
	case StructPHT:
		return "PHT"
	case StructRAS:
		return "RAS"
	case StructAll:
		return "BP"
	default:
		return fmt.Sprintf("Structure(%#x)", uint8(s))
	}
}

// Options configures the isolation stack. The zero value is the insecure
// baseline; DefaultOptions returns the paper's recommended configuration.
type Options struct {
	// Mechanism selects the defense.
	Mechanism Mechanism `json:"mechanism"`
	// Scope limits which structures the mechanism protects (0 means
	// StructAll). XOR-BTB alone is Scope: StructBTB; XOR-PHT alone is
	// Scope: StructPHT.
	Scope Structure `json:"scope"`
	// EnhancedPHT applies the word-granularity key schedule to direction
	// tables (Enhanced-XOR-PHT, §5.2). Without it, PHT entries are XORed
	// with a key truncated to the entry width, which §5.5 shows is only a
	// mitigation. Ignored by non-encoding mechanisms.
	EnhancedPHT bool `json:"enhanced_pht"`
	// RotateOnPrivilege regenerates keys on privilege changes (syscalls,
	// interrupts), the paper's design. Disabling it is an ablation: each
	// privilege level keeps its own stable key within a quantum.
	RotateOnPrivilege bool `json:"rotate_on_privilege"`
	// FlushOnPrivilege makes the flush mechanisms act on privilege changes
	// as well as context switches. The paper's Figure 1 experiment flushes
	// only on the periodic timer; the SMT comparisons (Figures 2, 3, 10)
	// require privilege-event flushes for equivalent protection.
	FlushOnPrivilege bool `json:"flush_on_privilege"`
	// RekeyPeriod, when nonzero, additionally rotates every domain's keys
	// each time this many *cycles* elapse, independent of scheduling
	// events — the asynchronous re-keying policy of STBPU-style designs.
	// It only applies to encoding mechanisms (XOR, NoisyXOR); Normalized
	// zeroes it otherwise so semantically identical flush/baseline
	// configurations key the run cache identically. This is the
	// performance-side twin of the attack jobs' event-count re-key knob
	// (wire.AttackSpec.RekeyPeriod, measured in predictor events).
	RekeyPeriod uint64 `json:"rekey_period"`
	// Codec is the content encoding; nil selects XORCodec. On the wire
	// (internal/wire) the interface is carried by its Name(), not its
	// value, so it is excluded from the JSON form.
	Codec Codec `json:"-"`
	// Scrambler is the index encoding; nil selects XORScrambler. Wire
	// handling matches Codec.
	Scrambler Scrambler `json:"-"`
}

// DefaultOptions returns the paper's full proposal: Noisy-XOR-BP with
// Enhanced-XOR-PHT content encoding and key rotation on privilege changes.
func DefaultOptions() Options {
	return Options{
		Mechanism:         NoisyXOR,
		EnhancedPHT:       true,
		RotateOnPrivilege: true,
		FlushOnPrivilege:  true,
		Codec:             XORCodec{},
		Scrambler:         XORScrambler{},
	}
}

// OptionsFor returns Options configured for a named mechanism with the
// paper's defaults for everything else.
func OptionsFor(m Mechanism) Options {
	o := DefaultOptions()
	o.Mechanism = m
	return o
}

// Normalized fills in nil interface fields and a zero scope with the
// paper defaults — the configuration the controller actually runs.
// Callers comparing or keying Options should normalize first so
// semantically identical configurations compare equal.
func (o Options) Normalized() Options {
	if o.Codec == nil {
		o.Codec = XORCodec{}
	}
	if o.Scrambler == nil {
		o.Scrambler = XORScrambler{}
	}
	if o.Scope == 0 {
		o.Scope = StructAll
	}
	if !o.Mechanism.Encodes() {
		o.RekeyPeriod = 0 // no keys to rotate; keep cache keys canonical
	}
	return o
}
