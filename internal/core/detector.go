package core

// SingleStepDetector implements the countermeasure sketched in §5.5
// scenario 3 for attacks that bypass encoding entirely by single-stepping
// the victim (e.g. priming the whole BTB and sensing *any* update): "a
// reasonable counter measure is for the system to detect extreme
// reduction of execution speed, and subsequently bypass update of any
// microarchitectural resources completely as these updates are unlikely
// to matter for execution speed."
//
// The detector watches the number of user instructions retired between
// consecutive kernel entries on a hardware thread. A run of Window
// kernel round-trips each covering fewer than MinProgress instructions
// is the single-step signature; while it persists, predictor updates are
// bypassed.
type SingleStepDetector struct {
	// MinProgress is the user-instruction count below which an interval
	// looks single-stepped.
	MinProgress uint64
	// Window is the number of consecutive starved intervals required
	// before updates are bypassed.
	Window int

	starved int
}

// NewSingleStepDetector returns a detector with the default calibration:
// fewer than 200 instructions per kernel round-trip, eight times in a
// row. Normal syscall-heavy code executes tens of thousands of
// instructions per trip (Table 4: a few trips per Mcycle).
func NewSingleStepDetector() *SingleStepDetector {
	return &SingleStepDetector{MinProgress: 200, Window: 8}
}

// KernelEntry reports a kernel entry after userInstructions retired since
// the previous one, and returns whether update bypass is (now) active.
//
//bpvet:hotpath
func (d *SingleStepDetector) KernelEntry(userInstructions uint64) bool {
	if userInstructions < d.MinProgress {
		if d.starved < d.Window {
			d.starved++
		}
	} else {
		d.starved = 0
	}
	return d.Bypass()
}

// Bypass reports whether predictor updates should currently be
// suppressed.
//
//bpvet:hotpath
func (d *SingleStepDetector) Bypass() bool {
	return d.Window > 0 && d.starved >= d.Window
}

// Reset clears the detector (e.g. on a context switch).
//
//bpvet:hotpath
func (d *SingleStepDetector) Reset() { d.starved = 0 }
