package core

import (
	"xorbp/internal/rng"
	"xorbp/internal/snap"
)

// Flusher is implemented by every predictor table so the flush mechanisms
// can clear state. FlushThread is only meaningful for structures that
// track per-entry owners (Precise Flush); owner-less structures fall back
// to FlushAll, matching the paper's note that thread-ID tagging a 2-bit
// PHT is prohibitively expensive (§4.1 observation 3 footnote).
type Flusher interface {
	// FlushAll clears the whole structure.
	FlushAll()
	// FlushThread clears entries owned by hardware thread t.
	FlushThread(t HWThread)
}

// registered pairs a table with its structure class for scoped flushes.
type registered struct {
	f    Flusher
	kind Structure
}

// Controller is the isolation event hub. The CPU model reports scheduling
// events; the controller applies the active mechanism: rotating keys for
// the encoding mechanisms, flushing registered tables for the flush
// mechanisms, and nothing for the baseline. The mechanism only touches
// structures within Options.Scope (Figures 7–9 isolate the BTB and PHT
// independently).
//
// Every secured structure holds a *Guard obtained from the controller,
// through which it reads keys and codec/scrambler configuration.
type Controller struct {
	opts Options
	keys *KeyFile

	tables []registered

	// statistics
	contextSwitches uint64
	privSwitches    uint64
	flushes         uint64
}

// NewController builds a controller for the given options. The seed feeds
// the hardware RNG model that generates keys.
func NewController(opts Options, seed uint64) *Controller {
	o := opts.Normalized()
	return &Controller{
		opts: o,
		keys: NewKeyFile(rng.NewHWRNG(seed), o.RotateOnPrivilege),
	}
}

// Options returns the normalized options in effect.
//
//bpvet:hotpath
func (c *Controller) Options() Options { return c.opts }

// Register adds a table of the given structure class to the flush
// broadcast list.
func (c *Controller) Register(f Flusher, kind Structure) {
	c.tables = append(c.tables, registered{f: f, kind: kind})
}

// inScope reports whether the mechanism applies to the structure class.
func (c *Controller) inScope(kind Structure) bool {
	return c.opts.Scope&kind != 0
}

// ContextSwitch reports that hardware thread t is being handed a new
// software thread. For encoding mechanisms this rotates t's keys; for
// flush mechanisms it flushes (whole tables for CompleteFlush, only t's
// entries for PreciseFlush) — in-scope structures only.
//
//bpvet:hotpath
func (c *Controller) ContextSwitch(t HWThread) {
	c.contextSwitches++
	switch {
	case c.opts.Mechanism.Encodes():
		c.keys.OnContextSwitch(t)
	case c.opts.Mechanism == CompleteFlush:
		c.flushAll()
	case c.opts.Mechanism == PreciseFlush:
		c.flushThread(t)
	}
}

// PrivilegeChange reports that hardware thread t is entering privilege
// level 'to'. Encoding mechanisms rotate the destination domain's keys
// when RotateOnPrivilege is set; flush mechanisms flush when
// FlushOnPrivilege is set.
//
//bpvet:hotpath
func (c *Controller) PrivilegeChange(t HWThread, to Privilege) {
	c.privSwitches++
	switch {
	case c.opts.Mechanism.Encodes():
		c.keys.OnPrivilegeChange(t, to)
	case c.opts.Mechanism == CompleteFlush:
		if c.opts.FlushOnPrivilege {
			c.flushAll()
		}
	case c.opts.Mechanism == PreciseFlush:
		if c.opts.FlushOnPrivilege {
			c.flushThread(t)
		}
	}
}

// PeriodicFlush forces a flush event independent of scheduling, modelling
// the paper's Figure 1 experiment ("the predictor is flushed every 4
// million cycles"). It is a no-op for non-flush mechanisms.
//
//bpvet:hotpath
func (c *Controller) PeriodicFlush() {
	switch c.opts.Mechanism {
	case CompleteFlush:
		c.flushAll()
	case PreciseFlush:
		c.flushAll() // periodic flush has no single victim thread
	}
}

// PeriodicRekey is the cycle-driven re-key event (Options.RekeyPeriod):
// every domain's keys rotate at once. It is a no-op for non-encoding
// mechanisms, whose periodic event is PeriodicFlush instead.
//
//bpvet:hotpath
func (c *Controller) PeriodicRekey() {
	if c.opts.Mechanism.Encodes() {
		c.keys.RotateAll()
	}
}

// RekeyEvery returns the periodic re-key interval in cycles, or 0 when
// periodic re-keying is inactive (the normalized options already zero the
// period for non-encoding mechanisms).
func (c *Controller) RekeyEvery() uint64 { return c.opts.RekeyPeriod }

func (c *Controller) flushAll() {
	c.flushes++
	for _, r := range c.tables {
		if c.inScope(r.kind) {
			r.f.FlushAll()
		}
	}
}

func (c *Controller) flushThread(t HWThread) {
	c.flushes++
	for _, r := range c.tables {
		if c.inScope(r.kind) {
			r.f.FlushThread(t)
		}
	}
}

// Stats reports event counts: context switches, privilege switches, flush
// broadcasts and key rotations.
func (c *Controller) Stats() (ctx, priv, flushes, rotations uint64) {
	return c.contextSwitches, c.privSwitches, c.flushes, c.keys.Rotations()
}

// Snapshot writes the controller's mutable state: event counters and the
// key file. The registered table list and options are static wiring
// rebuilt from the spec; the tables snapshot themselves through their own
// seams.
func (c *Controller) Snapshot(w *snap.Writer) {
	w.U64(c.contextSwitches)
	w.U64(c.privSwitches)
	w.U64(c.flushes)
	c.keys.Snapshot(w)
}

// Restore replaces the controller's mutable state.
func (c *Controller) Restore(r *snap.Reader) {
	c.contextSwitches = r.U64()
	c.privSwitches = r.U64()
	c.flushes = r.U64()
	c.keys.Restore(r)
}

// Guard returns the access-time view of the isolation configuration used
// by a secured table of the given structure class. A Guard is cheap and
// immutable; tables keep one. Structures outside the mechanism's scope
// receive a pass-through guard.
func (c *Controller) Guard(salt uint64, kind Structure) *Guard {
	_, codecXOR := c.opts.Codec.(XORCodec)
	_, scramXOR := c.opts.Scrambler.(XORScrambler)
	return &Guard{
		ctrl:     c,
		keys:     c.keys,
		salt:     rng.Mix64(salt),
		active:   c.inScope(kind),
		encode:   c.inScope(kind) && c.opts.Mechanism.Encodes(),
		scramix:  c.inScope(kind) && c.opts.Mechanism.ScramblesIndex(),
		codecXOR: codecXOR,
		scramXOR: scramXOR,
		enhanced: c.opts.EnhancedPHT,
	}
}

// Guard is what a secured table consults on every access. The salt
// diversifies keys per table so two tables indexed by the same PC bits do
// not share effective keys ("each table can also have their own index key
// and content key", Figure 6 caption).
//
// Guards sit on the simulator's per-branch path (every table read pays a
// decode, every index computation a scramble), so the common
// configurations are flattened at construction: the key file is reached
// without chasing the controller, and the paper's XOR codec/scrambler —
// the default everywhere — run inline instead of through the interface.
type Guard struct {
	ctrl     *Controller
	keys     *KeyFile
	salt     uint64
	active   bool // structure is in the mechanism's scope
	encode   bool // content encoding applies
	scramix  bool // index encoding applies
	codecXOR bool // codec is the plain XOR codec: run it inline
	scramXOR bool // scrambler is the plain XOR scrambler: run it inline
	enhanced bool // word-indexed Enhanced-XOR-PHT key schedule
}

// ContentKey returns the effective content key for a domain, or 0 when
// content encoding does not apply to this structure.
//
//bpvet:hotpath
func (g *Guard) ContentKey(d Domain) Key {
	if !g.encode {
		return 0
	}
	return g.keys.content[d.Thread][d.Priv] ^ Key(g.salt)
}

// IndexKey returns the effective index key for a domain, or 0 when index
// encoding does not apply to this structure.
//
//bpvet:hotpath
func (g *Guard) IndexKey(d Domain) Key {
	if !g.scramix {
		return 0
	}
	return g.keys.index[d.Thread][d.Priv] ^ Key(g.salt)
}

// The guard accessors below are split into an inlinable pass-through
// check plus an out-of-line encoded path: the pass-through case (the
// baseline and the flush mechanisms, i.e. every Figure 1-class cell)
// must cost a predicted branch, not a function call, because these sit
// inside every predictor table access.

// Encode applies the content codec (identity when out of scope).
//
//bpvet:hotpath
func (g *Guard) Encode(v uint64, d Domain) uint64 {
	if !g.encode {
		return v
	}
	return g.encodeEnc(v, d)
}

func (g *Guard) encodeEnc(v uint64, d Domain) uint64 {
	k := g.ContentKey(d)
	if g.codecXOR {
		return v ^ uint64(k)
	}
	return g.ctrl.opts.Codec.Encode(v, k)
}

// Decode inverts Encode.
//
//bpvet:hotpath
func (g *Guard) Decode(v uint64, d Domain) uint64 {
	if !g.encode {
		return v
	}
	return g.decodeEnc(v, d)
}

func (g *Guard) decodeEnc(v uint64, d Domain) uint64 {
	k := g.ContentKey(d)
	if g.codecXOR {
		return v ^ uint64(k)
	}
	return g.ctrl.opts.Codec.Decode(v, k)
}

// EncodeWord encodes v with a word-indexed key derived from the domain
// key: the Enhanced-XOR-PHT schedule ("different logical entries nearby in
// the PHT can use different keys", §5.2). Identity when out of scope.
//
//bpvet:hotpath
func (g *Guard) EncodeWord(v uint64, d Domain, word uint64) uint64 {
	if !g.encode {
		return v
	}
	k := g.wordKey(d, word)
	if g.codecXOR {
		return v ^ uint64(k)
	}
	return g.ctrl.opts.Codec.Encode(v, k)
}

// DecodeWord inverts EncodeWord.
//
//bpvet:hotpath
func (g *Guard) DecodeWord(v uint64, d Domain, word uint64) uint64 {
	if !g.encode {
		return v
	}
	k := g.wordKey(d, word)
	if g.codecXOR {
		return v ^ uint64(k)
	}
	return g.ctrl.opts.Codec.Decode(v, k)
}

func (g *Guard) wordKey(d Domain, word uint64) Key {
	base := g.ContentKey(d)
	if !g.enhanced {
		return base
	}
	return Key(rng.Mix64(uint64(base) + word*0x9e3779b97f4a7c15))
}

// ScrambleIndex applies the index encoding (identity unless the mechanism
// is NoisyXOR and the structure is in scope). Index widths are always
// below 64 bits, so the mask is computed directly to keep the
// pass-through case within the inlining budget.
//
//bpvet:hotpath
func (g *Guard) ScrambleIndex(idx uint64, d Domain, nbits uint) uint64 {
	if !g.scramix {
		return idx & (1<<nbits - 1)
	}
	return g.scrambleEnc(idx, d, nbits)
}

func (g *Guard) scrambleEnc(idx uint64, d Domain, nbits uint) uint64 {
	k := g.keys.index[d.Thread][d.Priv] ^ Key(g.salt)
	if g.scramXOR {
		return (idx ^ uint64(k)) & mask(nbits)
	}
	return g.ctrl.opts.Scrambler.Scramble(idx&mask(nbits), k, nbits)
}

// TracksOwners reports whether tables should maintain per-entry owner
// thread IDs (needed by Precise Flush).
//
//bpvet:hotpath
func (g *Guard) TracksOwners() bool {
	return g.active && g.ctrl.opts.Mechanism == PreciseFlush
}

// Encodes reports whether content encoding applies to this structure.
// Storage primitives use it to skip the decode/encode calls entirely on
// pass-through guards (the baseline and the flush mechanisms).
//
//bpvet:hotpath
func (g *Guard) Encodes() bool { return g.encode }
