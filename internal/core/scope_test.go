package core

import "testing"

func TestScopeLimitsEncoding(t *testing.T) {
	// XOR-BTB alone: BTB guards encode, PHT guards pass through.
	o := OptionsFor(XOR)
	o.Scope = StructBTB
	c := NewController(o, 1)
	gb := c.Guard(1, StructBTB)
	gp := c.Guard(2, StructPHT)
	d := Domain{Thread: 0, Priv: User}
	if gb.Encode(42, d) == 42 {
		t.Fatal("BTB guard should encode under Scope=BTB")
	}
	if gp.Encode(42, d) != 42 {
		t.Fatal("PHT guard must pass through under Scope=BTB")
	}
}

func TestScopeLimitsFlush(t *testing.T) {
	o := OptionsFor(CompleteFlush)
	o.Scope = StructPHT
	c := NewController(o, 1)
	fb := &fakeTable{}
	fp := &fakeTable{}
	c.Register(fb, StructBTB)
	c.Register(fp, StructPHT)
	c.ContextSwitch(0)
	if fb.all != 0 {
		t.Fatal("out-of-scope BTB was flushed")
	}
	if fp.all != 1 {
		t.Fatal("in-scope PHT was not flushed")
	}
}

func TestScopeZeroMeansAll(t *testing.T) {
	c := NewController(OptionsFor(NoisyXOR), 1)
	if c.Options().Scope != StructAll {
		t.Fatalf("normalized scope = %v, want StructAll", c.Options().Scope)
	}
}

func TestStructureString(t *testing.T) {
	if StructBTB.String() != "BTB" || StructPHT.String() != "PHT" || StructAll.String() != "BP" {
		t.Fatal("structure names wrong")
	}
}
