// Command bpserve is the experiment work-server: a daemon that accepts
// simulation specs over the canonical wire protocol (internal/wire) and
// returns their results, so bpsim sweeps can fan out across machines
// with -serve-addrs.
//
// Usage:
//
//	bpserve [-addr HOST:PORT] [-workers N] [-cache DIR] [-drain-timeout D]
//
// Endpoints:
//
//	POST /run      {"schema":..., "spec":...} -> {"schema":..., "result":...}
//	GET  /healthz  status, schema version, capacity, in-flight count
//
// -workers bounds concurrent simulations (default: one per CPU); excess
// requests queue. Every result is written through to -cache (default
// ~/.cache/xorbp), so workers sharing a directory — with each other or
// with bpsim — never repeat a spec. A spec already in the cache is
// answered without simulating.
//
// On SIGINT/SIGTERM the daemon drains gracefully: /healthz reports
// "draining", new /run requests get 503 (clients fail over), and
// in-flight simulations run to completion before exit, bounded by
// -drain-timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"xorbp/internal/runcache"
	"xorbp/internal/runner"
	"xorbp/internal/serve"
	"xorbp/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8091", "listen address")
	workers := flag.Int("workers", runner.DefaultWorkers(), "concurrent simulation limit (<=0: one per CPU)")
	cacheDir := flag.String("cache", runcache.DefaultDir(), "shared run-cache directory (\"\" disables)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Minute, "max wait for in-flight simulations on shutdown")
	flag.Parse()

	var st *runcache.Store
	if *cacheDir != "" {
		var err error
		st, err = runcache.Open(*cacheDir, wire.SchemaVersion())
		if err != nil {
			fmt.Fprintf(os.Stderr, "bpserve: disabling run cache: %v\n", err)
			st = nil
		}
	}

	srv := serve.New(*workers, st)
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	cache := "disabled"
	if st != nil {
		cache = st.Dir()
	}
	fmt.Fprintf(os.Stderr, "bpserve: listening on %s (capacity %d, cache %s)\n",
		*addr, srv.Capacity(), cache)

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "bpserve: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: refuse new work, let in-flight simulations finish.
	srv.SetDraining(true)
	fmt.Fprintf(os.Stderr, "bpserve: draining (%d simulations executed, %d replayed)\n",
		srv.Runs(), srv.Replays())
	sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "bpserve: shutdown: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "bpserve: drained")
}
