// Command bpserve is the experiment work-server: a daemon that accepts
// simulation specs over the canonical wire protocol (internal/wire) and
// returns their results, so bpsim sweeps can fan out across machines
// with -serve-addrs — or, with -pull, a work-stealing fleet worker that
// claims batches from a bpsim/attacksim -fleet leader.
//
// Usage:
//
//	bpserve [-addr HOST:PORT] [-workers N] [-cache DIR] [-drain-timeout D]
//	        [-token T] [-gc-interval D] [-gc-age D] [-gc-max-bytes N]
//	        [-tls-cert FILE] [-tls-key FILE] [-slow D]
//	bpserve -pull HOST:PORT [-pull-batch N] [-id NAME] [-tls-ca FILE]
//	        [-workers N] [-cache DIR] [-token T] [-slow D]
//
// Endpoints (push mode):
//
//	POST /run      {"schema":..., "spec":...} -> {"schema":..., "result":...}
//	GET  /healthz  status, schema version, capacity, in-flight count
//	GET  /statz    live load and cache counters (fleet routing inputs)
//
// -workers bounds concurrent simulations (default: one per CPU); excess
// requests queue. Every result is written through to -cache (default
// ~/.cache/xorbp), so workers sharing a directory — with each other or
// with bpsim — never repeat a spec. A spec already in the cache is
// answered without simulating. Specs may be performance runs or attack
// jobs (attacksim -serve-addrs); the worker executes both kinds.
//
// -token requires every request to carry "Authorization: Bearer T"
// (the same flag on bpsim/attacksim); mismatches get 401. The protocol
// remains plaintext HTTP — the token authenticates peers, it is not
// transport security.
//
// -gc-interval makes the worker garbage-collect its cache directory
// periodically (0 disables), bounding its own disk use instead of
// waiting for a manual `bpsim -cache-gc`: superseded schema directories
// are removed, then entries older than -gc-age, then the oldest
// survivors until the directory fits -gc-max-bytes.
//
// -tls-cert/-tls-key serve the push endpoint over TLS (clients pin the
// CA with their -tls-ca flag). -slow injects a fixed delay before every
// simulation — the slow-worker model for strategy benchmarks and the
// CI smoke topology; results are unaffected.
//
// -pull HOST:PORT flips the daemon into a work-stealing fleet worker:
// instead of listening, it claims batches of up to -pull-batch specs
// from the leader under a lease, heartbeats while simulating, reports
// each result as it lands, and goes back for more. -id names the
// worker for lease bookkeeping (default host:pid); -tls-ca pins the
// leader's CA. A pull worker that dies mid-batch forfeits its lease
// and the fleet steals the stalled specs.
//
// On SIGINT/SIGTERM the daemon drains gracefully. Push mode: /healthz
// reports "draining", new /run requests get 503 (clients fail over),
// and in-flight simulations run to completion before exit, bounded by
// -drain-timeout. Pull mode: the worker stops claiming, finishes the
// specs it has started, and nacks the rest of its lease back to the
// leader immediately instead of letting it time out.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"xorbp/internal/experiment"
	"xorbp/internal/fleet"
	"xorbp/internal/runcache"
	"xorbp/internal/runner"
	"xorbp/internal/serve"
	"xorbp/internal/trace"
	"xorbp/internal/wire"
)

// runPull is the -pull entrypoint: a work-stealing fleet worker
// claiming batches from a bpsim/attacksim -fleet leader until
// signalled. On SIGINT/SIGTERM it stops claiming, finishes the specs
// it has started, nacks the rest of its lease back, and exits; a
// second signal exits immediately.
func runPull(leader, id, token, tlsCA string, backend experiment.Backend,
	st *runcache.Store, batch, workers int, drainTimeout time.Duration) {
	if id == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "worker"
		}
		id = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	w := fleet.NewPullWorker(leader, id, backend, st, batch, workers)
	w.SetToken(token)
	if tlsCA != "" {
		pool, err := wire.LoadCertPool(tlsCA)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bpserve: %v\n", err)
			os.Exit(1)
		}
		w.SetTLS(pool)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	done := make(chan error, 1)
	go func() { done <- w.Run(context.Background()) }()
	cache := "disabled"
	if st != nil {
		cache = st.Dir()
	}
	fmt.Fprintf(os.Stderr, "bpserve: pulling from %s as %q (%d slots, cache %s)\n",
		leader, id, workers, cache)

	finish := func(err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "bpserve: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bpserve: drained (%d simulated, %d replayed, %d nacked)\n",
			w.Runs(), w.Replays(), w.Nacked())
	}

	select {
	case err := <-done:
		finish(err)
	case <-sig:
		fmt.Fprintf(os.Stderr, "bpserve: draining (finishing started specs, nacking the rest)\n")
		w.Drain()
		select {
		case err := <-done:
			finish(err)
		case <-time.After(drainTimeout):
			fmt.Fprintf(os.Stderr, "bpserve: drain timed out after %v\n", drainTimeout)
			os.Exit(1)
		case <-sig:
			fmt.Fprintln(os.Stderr, "bpserve: second signal, exiting now")
			os.Exit(1)
		}
	}
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8091", "listen address")
	workers := flag.Int("workers", runner.DefaultWorkers(), "concurrent simulation limit (<=0: one per CPU)")
	cacheDir := flag.String("cache", runcache.DefaultDir(), "shared run-cache directory (\"\" disables)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Minute, "max wait for in-flight simulations on shutdown")
	token := flag.String("token", "", "shared bearer token clients must present (\"\" = open)")
	gcInterval := flag.Duration("gc-interval", 6*time.Hour, "period between automatic cache GC passes (0 disables)")
	gcAge := flag.Duration("gc-age", 30*24*time.Hour, "GC: remove entries older than this (0 disables the age bound)")
	gcMaxBytes := flag.Int64("gc-max-bytes", 4<<30, "GC: evict oldest entries until the cache fits this many bytes (0 disables)")
	pull := flag.String("pull", "", "fleet leader address (bpsim -fleet): claim work instead of listening")
	pullBatch := flag.Int("pull-batch", 0, "with -pull: max specs claimed per lease (<=0: 2x workers)")
	workerID := flag.String("id", "", "with -pull: stable worker identity for lease bookkeeping (default host:pid)")
	tlsCert := flag.String("tls-cert", "", "serve the push endpoint over TLS with this certificate")
	tlsKey := flag.String("tls-key", "", "private key for -tls-cert")
	tlsCA := flag.String("tls-ca", "", "with -pull: PEM CA bundle to pin for the leader; claims switch to HTTPS")
	slow := flag.Duration("slow", 0, "inject a fixed delay before every simulation (slow-worker model for benchmarks; results unaffected)")
	flag.Parse()

	if (*tlsCert != "") != (*tlsKey != "") {
		fmt.Fprintln(os.Stderr, "bpserve: -tls-cert and -tls-key come as a pair")
		os.Exit(2)
	}

	var st *runcache.Store
	if *cacheDir != "" {
		var err error
		st, err = runcache.Open(*cacheDir, wire.SchemaVersion())
		if err != nil {
			fmt.Fprintf(os.Stderr, "bpserve: disabling run cache: %v\n", err)
			st = nil
		}
	}

	var backend experiment.Backend = experiment.LocalBackend{}
	if *slow > 0 {
		backend = fleet.Throttle{Inner: backend, Delay: *slow}
	}

	if *pull != "" {
		runPull(*pull, *workerID, *token, *tlsCA, backend, st, *pullBatch, *workers, *drainTimeout)
		return
	}

	srv := serve.New(*workers, st)
	srv.SetBackend(backend)
	srv.SetToken(*token)
	if st != nil {
		// Both live schemas sharing the directory survive the periodic
		// sweep: the experiment/attack run cache and bptrace's recordings.
		stopGC := serve.StartGC(*cacheDir, []string{wire.SchemaVersion(), trace.CacheSchema()},
			*gcInterval, runcache.GCOptions{MaxAge: *gcAge, MaxBytes: *gcMaxBytes}, os.Stderr)
		defer stopGC()
	}
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		if *tlsCert != "" {
			errc <- hs.ListenAndServeTLS(*tlsCert, *tlsKey)
		} else {
			errc <- hs.ListenAndServe()
		}
	}()
	cache := "disabled"
	if st != nil {
		cache = st.Dir()
	}
	fmt.Fprintf(os.Stderr, "bpserve: listening on %s (capacity %d, cache %s)\n",
		*addr, srv.Capacity(), cache)

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "bpserve: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: refuse new work, let in-flight simulations finish.
	srv.SetDraining(true)
	fmt.Fprintf(os.Stderr, "bpserve: draining (%d simulations executed, %d replayed)\n",
		srv.Runs(), srv.Replays())
	sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "bpserve: shutdown: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "bpserve: drained")
}
