// Command bpserve is the experiment work-server: a daemon that accepts
// simulation specs over the canonical wire protocol (internal/wire) and
// returns their results, so bpsim sweeps can fan out across machines
// with -serve-addrs.
//
// Usage:
//
//	bpserve [-addr HOST:PORT] [-workers N] [-cache DIR] [-drain-timeout D]
//	        [-token T] [-gc-interval D] [-gc-age D] [-gc-max-bytes N]
//
// Endpoints:
//
//	POST /run      {"schema":..., "spec":...} -> {"schema":..., "result":...}
//	GET  /healthz  status, schema version, capacity, in-flight count
//
// -workers bounds concurrent simulations (default: one per CPU); excess
// requests queue. Every result is written through to -cache (default
// ~/.cache/xorbp), so workers sharing a directory — with each other or
// with bpsim — never repeat a spec. A spec already in the cache is
// answered without simulating. Specs may be performance runs or attack
// jobs (attacksim -serve-addrs); the worker executes both kinds.
//
// -token requires every request to carry "Authorization: Bearer T"
// (the same flag on bpsim/attacksim); mismatches get 401. The protocol
// remains plaintext HTTP — the token authenticates peers, it is not
// transport security.
//
// -gc-interval makes the worker garbage-collect its cache directory
// periodically (0 disables), bounding its own disk use instead of
// waiting for a manual `bpsim -cache-gc`: superseded schema directories
// are removed, then entries older than -gc-age, then the oldest
// survivors until the directory fits -gc-max-bytes.
//
// On SIGINT/SIGTERM the daemon drains gracefully: /healthz reports
// "draining", new /run requests get 503 (clients fail over), and
// in-flight simulations run to completion before exit, bounded by
// -drain-timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"xorbp/internal/runcache"
	"xorbp/internal/runner"
	"xorbp/internal/serve"
	"xorbp/internal/trace"
	"xorbp/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8091", "listen address")
	workers := flag.Int("workers", runner.DefaultWorkers(), "concurrent simulation limit (<=0: one per CPU)")
	cacheDir := flag.String("cache", runcache.DefaultDir(), "shared run-cache directory (\"\" disables)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Minute, "max wait for in-flight simulations on shutdown")
	token := flag.String("token", "", "shared bearer token clients must present (\"\" = open)")
	gcInterval := flag.Duration("gc-interval", 6*time.Hour, "period between automatic cache GC passes (0 disables)")
	gcAge := flag.Duration("gc-age", 30*24*time.Hour, "GC: remove entries older than this (0 disables the age bound)")
	gcMaxBytes := flag.Int64("gc-max-bytes", 4<<30, "GC: evict oldest entries until the cache fits this many bytes (0 disables)")
	flag.Parse()

	var st *runcache.Store
	if *cacheDir != "" {
		var err error
		st, err = runcache.Open(*cacheDir, wire.SchemaVersion())
		if err != nil {
			fmt.Fprintf(os.Stderr, "bpserve: disabling run cache: %v\n", err)
			st = nil
		}
	}

	srv := serve.New(*workers, st)
	srv.SetToken(*token)
	if st != nil {
		// Both live schemas sharing the directory survive the periodic
		// sweep: the experiment/attack run cache and bptrace's recordings.
		stopGC := serve.StartGC(*cacheDir, []string{wire.SchemaVersion(), trace.CacheSchema()},
			*gcInterval, runcache.GCOptions{MaxAge: *gcAge, MaxBytes: *gcMaxBytes}, os.Stderr)
		defer stopGC()
	}
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	cache := "disabled"
	if st != nil {
		cache = st.Dir()
	}
	fmt.Fprintf(os.Stderr, "bpserve: listening on %s (capacity %d, cache %s)\n",
		*addr, srv.Capacity(), cache)

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "bpserve: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: refuse new work, let in-flight simulations finish.
	srv.SetDraining(true)
	fmt.Fprintf(os.Stderr, "bpserve: draining (%d simulations executed, %d replayed)\n",
		srv.Runs(), srv.Replays())
	sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "bpserve: shutdown: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "bpserve: drained")
}
