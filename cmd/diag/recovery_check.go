package main

import (
	"fmt"

	"xorbp/internal/core"
	"xorbp/internal/cpu"
	"xorbp/internal/experiment"
	"xorbp/internal/workload"
)

// checkRecovery prints MPKI in consecutive windows after warmup for
// baseline vs CompleteFlush vs NoisyXOR, per predictor, SMT-2 case5.
func checkRecovery() {
	pair := workload.SMTPairs()[4] // dealII+sjeng
	for _, pred := range []string{"gshare", "tournament", "ltage", "tage_sc_l"} {
		for _, m := range []core.Mechanism{core.Baseline, core.CompleteFlush, core.NoisyXOR} {
			ctrl := core.NewController(core.OptionsFor(m), 1)
			dir := experiment.NewDirPredictor(pred, ctrl)
			c := cpu.New(cpu.Gem5Config(2), cpu.DefaultScheduler(1_000_000), ctrl, dir)
			c.Assign(
				workload.NewGenerator(workload.MustByName(pair.First), 1000),
				workload.NewGenerator(workload.MustByName(pair.Second), 1001),
			)
			c.RunTotalInstructions(3_000_000)
			c.ResetStats()
			cyc := c.RunTotalInstructions(12_000_000)
			var misp, instr, eff uint64
			for hw := 0; hw < 2; hw++ {
				st := c.ThreadStatsOf(hw, 0)
				misp += st.DirMisp
				instr += st.Instructions
				eff += st.EffMisp
			}
			_, priv, fl, _ := ctrl.Stats()
			fmt.Printf("%-11s %-14s cyc=%-9d MPKI=%5.2f effMPKI=%5.2f priv/Mc=%4.1f flush/Mc=%4.1f\n",
				pred, m, cyc, float64(misp)/float64(instr)*1000,
				float64(eff)/float64(instr)*1000,
				float64(priv)/float64(cyc)*1e6, float64(fl)/float64(cyc)*1e6)
		}
	}
}
