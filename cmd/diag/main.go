// Command diag prints per-benchmark calibration diagnostics: MPKI under
// the FPGA TAGE and gem5 Gshare predictors, IPC, BTB hit rate, and
// privilege-switch rate. Used to tune workload profiles against the
// paper's anchors (gcc 90.1% PHT accuracy, Table 4 rates, §6.3 MPKI).
package main

import (
	"flag"
	"fmt"
	"sort"

	"xorbp/internal/core"
	"xorbp/internal/cpu"
	"xorbp/internal/experiment"
	"xorbp/internal/workload"
)

func bench(name, pred string) (mpki, ipc, btbHit, privPerM, acc float64) {
	ctrl := core.NewController(core.OptionsFor(core.Baseline), 1)
	dir := experiment.NewDirPredictor(pred, ctrl)
	c := cpu.New(cpu.FPGAConfig(), cpu.DefaultScheduler(1_000_000), ctrl, dir)
	c.Assign(workload.NewGenerator(workload.MustByName(name), 1000))
	c.RunTargetInstructions(1_000_000)
	c.ResetStats()
	c.RunTargetInstructions(4_000_000)
	st := c.ThreadStatsOf(0, 0)
	cyc := c.ThreadCyclesOf(0, 0)
	_, priv, _, _ := ctrl.Stats()
	acc = 1 - float64(st.DirMisp)/float64(st.CondBranches)
	return st.MPKI(), float64(st.Instructions) / float64(cyc),
		c.BTBUnit().HitRate(), float64(priv) / float64(c.Cycles()) * 1e6, acc
}

func main() {
	recovery := flag.Bool("recovery", false, "print per-predictor SMT flush/rotation recovery detail")
	scramble := flag.Bool("scramble", false, "verify XOR vs Noisy-XOR BTB cycle equivalence")
	flag.Parse()
	if *recovery {
		checkRecovery()
		return
	}
	if *scramble {
		checkScramble()
		return
	}

	names := workload.Names()
	sort.Strings(names)
	fmt.Printf("%-14s %7s %7s %6s %7s %7s %8s\n",
		"benchmark", "tMPKI", "gMPKI", "IPC", "PHTacc", "BTBhit", "priv/Mc")
	for _, n := range names {
		tm, ipc, hit, priv, acc := bench(n, "tage")
		gm, _, _, _, _ := bench(n, "gshare")
		fmt.Printf("%-14s %7.2f %7.2f %6.2f %6.1f%% %6.1f%% %8.1f\n",
			n, tm, gm, ipc, acc*100, hit*100, priv)
	}
}
