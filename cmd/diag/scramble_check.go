package main

import (
	"fmt"

	"xorbp/internal/core"
	"xorbp/internal/cpu"
	"xorbp/internal/tage"
	"xorbp/internal/workload"
)

// checkScramble compares XOR-BTB vs Noisy-XOR-BTB cycle-for-cycle.
func checkScramble() {
	for _, m := range []core.Mechanism{core.XOR, core.NoisyXOR} {
		o := core.OptionsFor(m)
		o.Scope = core.StructBTB
		ctrl := core.NewController(o, 1)
		dir := tage.New(tage.FPGAConfig(), ctrl)
		c := cpu.New(cpu.FPGAConfig(), cpu.DefaultScheduler(1_000_000), ctrl, dir)
		c.Assign(
			workload.NewGenerator(workload.MustByName("gcc"), 1000),
			workload.NewGenerator(workload.MustByName("calculix"), 1001),
		)
		c.RunTargetInstructions(1_000_000)
		c.ResetStats()
		c.RunTargetInstructions(2_000_000)
		fmt.Printf("%-14s scope=BTB cycles=%d btbHit=%.4f\n", m, c.ThreadCyclesOf(0, 0), c.BTBUnit().HitRate())
	}
}
