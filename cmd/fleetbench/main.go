// Command fleetbench measures the fleet dispatch policies against each
// other and writes the evidence behind STRATEGY_LEDGER.md.
//
// Usage:
//
//	fleetbench [-scale micro|bench] [-fleet 3] [-cap 4]
//	           [-skew 0] [-policies serial,shard,...] [-repeat]
//	           [-statz-interval 50ms] [-check]
//
// Every policy resolves the same workload — the full Figure 1 grid —
// on the same in-process fleet: N bpserve workers (real HTTP, real
// wire protocol) for the push policies, N pull workers against a
// leader queue for `pull`, N store-sharing shard processes for
// `shard`, and a single local executor for `serial`. -skew slows the
// last fleet member by the given per-simulation delay, turning the
// uniform fleet into the straggler fleet the adaptive policies exist
// for.
//
// For each policy it reports wall time, speedup over serial, and the
// per-member simulation distribution, and it verifies that the
// rendered figure is byte-identical to the serial render — dispatch
// policy must never be observable in results. -check exits 1 on any
// divergence (CI runs this gate). -repeat runs the figure a second
// time on the same warm fleet (fresh executor, workers keep their
// stores), which is where runcache-affinity routing earns its keep.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"xorbp/internal/experiment"
	"xorbp/internal/fleet"
	"xorbp/internal/runcache"
	"xorbp/internal/serve"
	"xorbp/internal/wire"
)

func main() {
	var (
		scaleName = flag.String("scale", "micro", "workload scale: micro or bench")
		fleetN    = flag.Int("fleet", 3, "fleet size (workers / shards)")
		capacity  = flag.Int("cap", 4, "simulation slots per fleet member")
		skew      = flag.Duration("skew", 0, "per-simulation delay on the last fleet member (0 = uniform fleet)")
		policies  = flag.String("policies", strings.Join(fleet.LedgerPolicies(), ","), "comma-separated policies to measure")
		repeat    = flag.Bool("repeat", false, "run the figure twice on the same warm fleet (second pass exercises the stores)")
		statzEach = flag.Duration("statz-interval", 50*time.Millisecond, "statz poll interval for the leastloaded policy")
		check     = flag.Bool("check", false, "exit 1 if any policy's render differs from serial")
	)
	flag.Parse()

	var scale experiment.Scale
	switch *scaleName {
	case "micro":
		scale = experiment.MicroScale()
	case "bench":
		scale = experiment.BenchScale()
	default:
		fmt.Fprintf(os.Stderr, "fleetbench: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	if *fleetN < 1 || *capacity < 1 {
		fmt.Fprintln(os.Stderr, "fleetbench: -fleet and -cap must be >= 1")
		os.Exit(2)
	}

	b := &bench{
		scale:     scale,
		n:         *fleetN,
		cap:       *capacity,
		skew:      *skew,
		repeat:    *repeat,
		statzEach: *statzEach,
	}

	fmt.Printf("# fleetbench: %d members x %d slots, scale %s, skew %s\n\n",
		b.n, b.cap, *scaleName, *skew)

	serial := b.serial()
	rows := []row{serial}
	diverged := false
	for _, p := range strings.Split(*policies, ",") {
		p = strings.TrimSpace(p)
		if p == "" || p == "serial" {
			continue
		}
		r := b.run(p, serial)
		if !r.identical {
			diverged = true
		}
		rows = append(rows, r)
	}

	printTable(rows, serial, b.repeat)
	if diverged {
		fmt.Fprintln(os.Stderr, "fleetbench: POLICY DIVERGENCE — a dispatch policy changed the rendered bytes")
		if *check {
			os.Exit(1)
		}
	}
}

// row is one measured policy.
type row struct {
	policy    string
	wall      time.Duration
	warmWall  time.Duration // -repeat second pass (0 when disabled)
	dist      []uint64      // simulations per fleet member, cold pass
	replays   uint64        // store replays, warm pass
	identical bool
	render    string
}

type bench struct {
	scale     experiment.Scale
	n, cap    int
	skew      time.Duration
	repeat    bool
	statzEach time.Duration
}

// backendFor returns the local backend for fleet member i, throttled
// when i is the designated straggler.
func (b *bench) backendFor(i int) experiment.Backend {
	if b.skew > 0 && i == b.n-1 {
		return fleet.Throttle{Inner: experiment.LocalBackend{}, Delay: b.skew}
	}
	return experiment.LocalBackend{}
}

// render resolves the ledger workload through exec and returns the
// figure bytes.
func (b *bench) render(exec *experiment.Executor) string {
	out := experiment.NewSessionWith(b.scale, exec).Figure1().Render()
	if err := exec.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "fleetbench: executor failed: %v\n", err)
		os.Exit(1)
	}
	return out
}

func (b *bench) serial() row {
	start := time.Now()
	render := b.render(experiment.NewExecutor(1))
	r := row{policy: "serial", wall: time.Since(start), identical: true, render: render}
	if b.repeat {
		start = time.Now()
		b.render(experiment.NewExecutor(1))
		r.warmWall = time.Since(start)
	}
	return r
}

func (b *bench) run(policy string, serial row) row {
	switch policy {
	case "shard":
		return b.runShard(serial)
	case "pull":
		return b.runPull(serial)
	default:
		if _, ok := fleet.ScorerByName(policy); !ok {
			fmt.Fprintf(os.Stderr, "fleetbench: unknown policy %q (have %s)\n",
				policy, strings.Join(fleet.LedgerPolicies(), ", "))
			os.Exit(2)
		}
		return b.runPush(policy, serial)
	}
}

// member is one in-process bpserve worker on a real loopback listener.
type member struct {
	srv  *serve.Server
	addr string
	hs   *http.Server
}

func (b *bench) startMembers() []member {
	members := make([]member, b.n)
	for i := range members {
		var store *runcache.Store
		if b.repeat {
			dir, err := os.MkdirTemp("", "fleetbench-store-*")
			if err != nil {
				fmt.Fprintf(os.Stderr, "fleetbench: %v\n", err)
				os.Exit(1)
			}
			defer os.RemoveAll(dir)
			store, err = runcache.Open(dir, wire.SchemaVersion())
			if err != nil {
				fmt.Fprintf(os.Stderr, "fleetbench: %v\n", err)
				os.Exit(1)
			}
		}
		srv := serve.New(b.cap, store)
		srv.SetBackend(b.backendFor(i))
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleetbench: %v\n", err)
			os.Exit(1)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go func() { _ = hs.Serve(ln) }()
		members[i] = member{srv: srv, addr: ln.Addr().String(), hs: hs}
	}
	return members
}

func stopMembers(members []member) {
	for _, m := range members {
		_ = m.hs.Close()
	}
}

func (b *bench) runPush(policy string, serial row) row {
	members := b.startMembers()
	defer stopMembers(members)
	addrs := make([]string, len(members))
	for i, m := range members {
		addrs[i] = m.addr
	}

	client := wire.NewClient(addrs)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	if err := client.Probe(ctx); err != nil {
		cancel()
		fmt.Fprintf(os.Stderr, "fleetbench: probe: %v\n", err)
		os.Exit(1)
	}
	cancel()

	scorer, _ := fleet.ScorerByName(policy)
	router := fleet.NewRouter(client, scorer)
	router.Install()
	if policy == (fleet.LeastLoaded{}).Name() {
		pollCtx, stopPoll := context.WithCancel(context.Background())
		defer stopPoll()
		go router.Poll(pollCtx, b.statzEach)
	}

	start := time.Now()
	render := b.render(experiment.NewExecutorWith(client.Workers(), client))
	r := row{policy: policy, wall: time.Since(start), render: render,
		identical: render == serial.render}
	for _, m := range members {
		r.dist = append(r.dist, m.srv.Runs())
	}
	if b.repeat {
		start = time.Now()
		warm := b.render(experiment.NewExecutorWith(client.Workers(), client))
		r.warmWall = time.Since(start)
		if warm != serial.render {
			r.identical = false
		}
		for _, m := range members {
			r.replays += m.srv.Replays()
		}
	}
	return r
}

func (b *bench) runPull(serial row) row {
	q := fleet.NewQueue(0, time.Now)
	leader := fleet.NewLeader(q, "")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetbench: %v\n", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: leader.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	workers := make([]*fleet.PullWorker, b.n)
	var store *runcache.Store
	if b.repeat {
		dir, err := os.MkdirTemp("", "fleetbench-pull-store-*")
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleetbench: %v\n", err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir)
		store, err = runcache.Open(dir, wire.SchemaVersion())
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleetbench: %v\n", err)
			os.Exit(1)
		}
	}
	for i := range workers {
		// Batch = slots: one spec of lookahead per slot keeps a straggler
		// from hoarding work it will finish last.
		w := fleet.NewPullWorker(ln.Addr().String(), fmt.Sprintf("bench-%d", i),
			b.backendFor(i), store, b.cap, b.cap)
		workers[i] = w
		go func() { _ = w.Run(ctx) }()
	}

	start := time.Now()
	render := b.render(experiment.NewExecutorWith(b.n*b.cap, leader.Backend()))
	r := row{policy: "pull", wall: time.Since(start), render: render,
		identical: render == serial.render}
	for _, w := range workers {
		r.dist = append(r.dist, w.Runs())
	}
	if b.repeat {
		start = time.Now()
		warm := b.render(experiment.NewExecutorWith(b.n*b.cap, leader.Backend()))
		r.warmWall = time.Since(start)
		if warm != serial.render {
			r.identical = false
		}
		for _, w := range workers {
			r.replays += w.Replays()
		}
	}
	return r
}

// runShard is the static baseline: b.n cooperating "processes" each
// own a fixed hash slice of the grid, sharing one store; a final
// unsharded run replays the union and renders. The straggler owns its
// slice no matter how slow it is — exactly the failure mode pull
// dispatch removes.
func (b *bench) runShard(serial row) row {
	dir, err := os.MkdirTemp("", "fleetbench-shard-*")
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetbench: %v\n", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	store, err := runcache.Open(dir, wire.SchemaVersion())
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetbench: %v\n", err)
		os.Exit(1)
	}

	start := time.Now()
	execs := make([]*experiment.Executor, b.n)
	done := make(chan int, b.n)
	for i := 0; i < b.n; i++ {
		exec := experiment.NewExecutorWith(b.cap, b.backendFor(i))
		exec.SetShard(i, b.n)
		exec.SetStore(store)
		execs[i] = exec
		go func(i int) {
			experiment.NewSessionWith(b.scale, exec).Figure1()
			done <- i
		}(i)
	}
	for i := 0; i < b.n; i++ {
		<-done
	}
	// Merge pass: replay the union out of the shared store.
	merge := experiment.NewExecutorWith(b.n*b.cap, experiment.LocalBackend{})
	merge.SetStore(store)
	render := b.render(merge)
	r := row{policy: "shard", wall: time.Since(start), render: render,
		identical: render == serial.render}
	for _, exec := range execs {
		r.dist = append(r.dist, exec.Runs())
	}
	if b.repeat {
		start = time.Now()
		warm := experiment.NewExecutorWith(b.n*b.cap, experiment.LocalBackend{})
		warm.SetStore(store)
		warmRender := b.render(warm)
		r.warmWall = time.Since(start)
		if warmRender != serial.render {
			r.identical = false
		}
		r.replays = uint64(warm.Replays())
	}
	return r
}

func printTable(rows []row, serial row, repeat bool) {
	header := "| policy | wall | speedup | runs per member | identical |"
	rule := "|---|---|---|---|---|"
	if repeat {
		header = "| policy | cold wall | speedup | warm wall | warm replays | runs per member | identical |"
		rule = "|---|---|---|---|---|---|---|"
	}
	fmt.Println(header)
	fmt.Println(rule)
	for _, r := range rows {
		dist := make([]string, len(r.dist))
		for i, d := range r.dist {
			dist[i] = fmt.Sprintf("%d", d)
		}
		distCol := strings.Join(dist, "/")
		if distCol == "" {
			distCol = "-"
		}
		ident := "yes"
		if !r.identical {
			ident = "NO"
		}
		speedup := float64(serial.wall) / float64(r.wall)
		if repeat {
			fmt.Printf("| %s | %s | %.2fx | %s | %d | %s | %s |\n",
				r.policy, fmtDur(r.wall), speedup, fmtDur(r.warmWall), r.replays, distCol, ident)
		} else {
			fmt.Printf("| %s | %s | %.2fx | %s | %s |\n",
				r.policy, fmtDur(r.wall), speedup, distCol, ident)
		}
	}
}

func fmtDur(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return d.Round(time.Millisecond).String()
}
