// Command bpsim regenerates the paper's performance tables and figures.
//
// Usage:
//
//	bpsim -exp table2|table3|workloads|fig1|fig2|fig3|fig7|fig8|fig9|fig10|rekey|table4|table5|mpki|residency|all
//	      [-scale full|bench|micro] [-seed N] [-workers N] [-progress] [-json]
//	      [-cache DIR] [-serve-addrs HOST:PORT,...] [-shard I/N] [-token T]
//	      [-route POLICY] [-tls-ca FILE]
//	      [-fleet HOST:PORT] [-fleet-lease D] [-tls-cert FILE] [-tls-key FILE]
//	      [-journal FILE] [-resume] [-chaos PLAN] [-degrade=false]
//	      [-cache-gc] [-gc-age D] [-gc-max-bytes N]
//	      [-cpuprofile FILE] [-memprofile FILE]
//
// Simulations fan out across -workers goroutines (default: one per CPU);
// results are deterministic for any worker count.
//
// -cache DIR persists every resolved simulation across invocations
// (default ~/.cache/xorbp; -cache "" disables): a second run of the same
// experiments replays results from the store instead of simulating.
//
// -serve-addrs dispatches simulations to bpserve worker daemons instead
// of the local pool. Tables are byte-identical to a local run: results
// are pure functions of their specs regardless of where they execute.
// Unless -workers is set explicitly, the fan-out width is the fleet's
// total capacity. -route picks the push routing policy (roundrobin,
// leastloaded, capacity, affinity — see internal/fleet); -tls-ca pins
// the workers' CA and switches dispatch to HTTPS.
//
// -fleet HOST:PORT inverts the dispatch: this process becomes a
// pull-queue leader, and bpserve workers started with -pull HOST:PORT
// claim batches of specs under a -fleet-lease lease, heartbeat while
// simulating, and report results back. A worker that dies mid-batch
// forfeits its lease and the rest of the fleet steals the stalled
// cells. -tls-cert/-tls-key serve the leader endpoint over TLS.
// Mutually exclusive with -serve-addrs; tables stay byte-identical to
// a serial run under every topology.
//
// -journal FILE makes the sweep crash-safe: every planned wire key and
// every resolved result is appended (fsynced) to an append-only WAL, so
// a run killed mid-sweep can be restarted with -resume — the journal's
// completed cells are replayed without simulating and only the
// remainder runs, in every topology. Tables are byte-identical to an
// uninterrupted run.
//
// -chaos PLAN arms deterministic fault injection from a FaultPlan JSON
// file (see internal/chaos): seeded faults fire at the transport, run
// cache and fleet seams, and a run is exactly replayable from its plan.
// With -serve-addrs, a per-worker circuit breaker rides out injected
// (or real) outages, and -degrade (default true) falls back to
// in-process simulation when every circuit is open instead of failing
// the sweep. -chaos is for hardening tests; results stay correct under
// it or the run fails loudly.
//
// -shard I/N statically partitions the grid: this process simulates only
// the cells whose key hashes to shard I of N, skips the rest, and
// suppresses table output (a sharded run populates the shared cache; an
// unsharded run afterwards renders from it without simulating).
//
// -progress emits one line per completed simulation to stderr, counted
// against the full grid planned for the invocation (all requested
// experiments, not the current batch) with a throughput-based ETA over
// the cells that still need simulating.
//
// -json streams one record per resolved simulation — spec label, key
// hash, cycles, MPKI, duration and cache hit/miss — as single-line
// {"type":"run",...} objects, followed by each experiment's table and a
// final {"type":"summary",...} record (planned/simulated/cached/skipped
// counts, wall time, backend), so scripted sweeps don't have to tally
// run records themselves.
//
// -cache-gc garbage-collects the cache directory instead of running
// experiments: superseded schema subdirectories are removed, then
// entries older than -gc-age, then the oldest survivors until the
// directory fits -gc-max-bytes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"xorbp/internal/driver"
	"xorbp/internal/experiment"
	"xorbp/internal/hwcost"
	"xorbp/internal/runcache"
	"xorbp/internal/runner"
	"xorbp/internal/trace"
	"xorbp/internal/workload"
)

// order is the canonical experiment list: the -exp flag accepts exactly
// these names (plus "all", which runs them in this order). The package
// doc and the flag help are derived from / reconciled with this slice.
var order = []string{"table2", "table3", "workloads", "fig1", "fig2", "fig3",
	"fig7", "fig8", "fig9", "fig10", "rekey", "table4", "table5", "mpki", "residency"}

// expRunner couples an experiment with whether it resolves simulations
// through the session's executor (and therefore participates in grid
// planning and the run cache).
type expRunner struct {
	run  func(s *experiment.Session, seed uint64) (*experiment.Table, error)
	sims bool
}

// runners maps every name in order to its runner.
func runners() map[string]expRunner {
	sim := func(f func(*experiment.Session) *experiment.Table) expRunner {
		return expRunner{
			run:  func(s *experiment.Session, _ uint64) (*experiment.Table, error) { return f(s), nil },
			sims: true,
		}
	}
	static := func(f func() *experiment.Table) expRunner {
		return expRunner{
			run: func(*experiment.Session, uint64) (*experiment.Table, error) { return f(), nil },
		}
	}
	return map[string]expRunner{
		"fig1":      sim((*experiment.Session).Figure1),
		"fig2":      sim((*experiment.Session).Figure2),
		"fig3":      sim((*experiment.Session).Figure3),
		"fig7":      sim((*experiment.Session).Figure7),
		"fig8":      sim((*experiment.Session).Figure8),
		"fig9":      sim((*experiment.Session).Figure9),
		"fig10":     sim((*experiment.Session).Figure10),
		"rekey":     sim((*experiment.Session).RekeySweep),
		"table2":    static(experiment.Table2),
		"table3":    static(experiment.Table3),
		"table4":    sim((*experiment.Session).Table4),
		"table5":    static(hwcost.Table5),
		"mpki":      sim((*experiment.Session).MPKI),
		"residency": sim((*experiment.Session).BTBResidency),
		"workloads": {run: func(_ *experiment.Session, seed uint64) (*experiment.Table, error) {
			return workload.CharacterizationTable(400_000, seed)
		}},
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bpsim: "+format+"\n", args...)
	driver.StopProfiles() // os.Exit skips the deferred stop
	os.Exit(1)
}

func main() {
	exp := flag.String("exp", "all", "experiment to run ("+strings.Join(order, ", ")+", all)")
	scaleName := flag.String("scale", "full", "simulation scale: full, bench or micro")
	seed := flag.Uint64("seed", 1, "simulation seed")
	asJSON := flag.Bool("json", false, "emit per-run records, machine-readable JSON tables and a final summary record instead of text")
	workers := flag.Int("workers", runner.DefaultWorkers(), "simulation worker pool size (<=0: one per CPU; with -serve-addrs, defaults to fleet capacity)")
	progress := flag.Bool("progress", false, "emit a line per completed simulation to stderr, with session-wide ETA")
	cacheDir := flag.String("cache", runcache.DefaultDir(), "persistent run-cache directory (\"\" disables)")
	serveAddrs := flag.String("serve-addrs", "", "comma-separated bpserve worker addresses (host:port); simulations run remotely")
	shard := flag.String("shard", "", "static grid shard I/N (0-based): simulate only owned cells, skip the rest, suppress tables")
	token := flag.String("token", "", "bearer token for -serve-addrs workers (bpserve -token)")
	cacheGC := flag.Bool("cache-gc", false, "garbage-collect the run cache and exit (see -gc-age, -gc-max-bytes)")
	gcAge := flag.Duration("gc-age", 30*24*time.Hour, "with -cache-gc: remove entries older than this (0 disables)")
	gcMaxBytes := flag.Int64("gc-max-bytes", 4<<30, "with -cache-gc: evict oldest entries until the cache fits this many bytes (0 disables)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the invocation to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (post-GC) to this file on exit")
	journalPath := flag.String("journal", "", "append-only sweep journal (WAL): crash-safe record of planned and completed cells")
	resume := flag.Bool("resume", false, "resume from -journal: replay its completed cells and simulate only the remainder")
	chaosPlan := flag.String("chaos", "", "arm deterministic fault injection from this FaultPlan JSON file (hardening tests)")
	fleetFlags := driver.AddFleetFlags()
	flag.Parse()

	stopProfiles := driver.StartProfiles("bpsim", *cpuProfile, *memProfile)
	defer stopProfiles()

	if *cacheGC {
		if *cacheDir == "" {
			fatalf("-cache-gc needs a cache directory (-cache)")
		}
		// Both live schemas sharing the directory survive the sweep: the
		// experiment run cache and bptrace's recording cache.
		rep, err := runcache.GC(*cacheDir,
			[]string{experiment.SchemaVersion(), trace.CacheSchema()},
			runcache.GCOptions{MaxAge: *gcAge, MaxBytes: *gcMaxBytes})
		if err != nil {
			fatalf("cache-gc: %v", err)
		}
		fmt.Printf("cache-gc %s: %s\n", *cacheDir, rep)
		return
	}

	var scale experiment.Scale
	switch *scaleName {
	case "full":
		scale = experiment.FullScale()
	case "bench":
		scale = experiment.BenchScale()
	case "micro":
		scale = experiment.MicroScale()
	default:
		fmt.Fprintf(os.Stderr, "bpsim: unknown scale %q\n", *scaleName)
		driver.StopProfiles()
		os.Exit(2)
	}
	scale.Seed = *seed

	// A fleet sweep has a sink too: pull workers cache on their side.
	shardI, shardN := driver.ParseShard("bpsim", *shard,
		*cacheDir != "" || *serveAddrs != "" || *fleetFlags.Fleet != "")

	reg := runners()
	names := []string{*exp}
	if *exp == "all" {
		names = order
	}
	for _, name := range names {
		if _, ok := reg[name]; !ok {
			fmt.Fprintf(os.Stderr, "bpsim: unknown experiment %q\n", name)
			driver.StopProfiles()
			os.Exit(2)
		}
	}

	// Pick the topology: the in-process pool, a push-routed bpserve
	// fleet, or a pull-queue leader.
	workersSet := false
	flag.Visit(func(f *flag.Flag) { workersSet = workersSet || f.Name == "workers" })
	ch := driver.LoadChaos("bpsim", *chaosPlan)
	conn := driver.Connect(driver.ConnectOptions{
		Prog: "bpsim", ServeAddrs: *serveAddrs, Token: *token,
		Workers: *workers, WorkersSet: workersSet, Fleet: fleetFlags,
		Transport: ch.Transport(),
	})
	defer conn.Close()

	exec := experiment.NewExecutorWith(conn.PoolSize, conn.Backend)
	if shardN > 1 {
		exec.SetShard(shardI, shardN)
	}
	if *progress {
		exec.SetProgress(os.Stderr)
	}
	if *cacheDir != "" {
		st, err := runcache.Open(*cacheDir, experiment.SchemaVersion())
		if err != nil {
			fmt.Fprintf(os.Stderr, "bpsim: disabling run cache: %v\n", err)
		} else {
			exec.SetStore(st)
			ch.ArmStore(st)
		}
	}
	if *asJSON {
		exec.SetRecord(func(r experiment.RunRecord) {
			out, err := json.Marshal(struct {
				Type string `json:"type"`
				experiment.RunRecord
			}{"run", r})
			if err == nil {
				fmt.Println(string(out))
			}
		})
	}
	s := experiment.NewSessionWith(scale, exec)

	// Plan the whole invocation's grid against a dry executor (no
	// simulation) so -progress counts and the ETA cover every requested
	// experiment from the first line, not batch by batch.
	planner := experiment.NewPlanner()
	ps := experiment.NewSessionWith(scale, planner)
	for _, name := range names {
		if reg[name].sims {
			if _, err := reg[name].run(ps, *seed); err != nil {
				fatalf("planning %s: %v", name, err)
			}
		}
	}
	exec.Plan(planner)

	jnl := driver.AttachJournal("bpsim", exec, *journalPath, *resume)
	if jnl != nil {
		defer jnl.Close()
	}

	wallStart := time.Now()
	var shardProg driver.ShardProgress
	for _, name := range names {
		start := time.Now()
		tab, err := reg[name].run(s, *seed)
		if err != nil {
			fatalf("%s: %v", name, err)
		}
		if err := exec.Err(); err != nil {
			fatalf("backend failed: %v", err)
		}
		if shardN > 1 {
			// A sharded run populates the shared cache; its tables would
			// mix real cells with the zero results of skipped cells.
			fmt.Fprintln(os.Stderr, shardProg.Line(exec, shardI, shardN, name))
			continue
		}
		if *asJSON {
			out, err := json.MarshalIndent(map[string]any{"experiment": name, "table": tab}, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				driver.StopProfiles()
				os.Exit(1)
			}
			fmt.Println(string(out))
			continue
		}
		fmt.Println(tab.Render())
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	if *asJSON {
		rec := driver.Summarize(exec, conn, shardI, shardN, wallStart)
		if out, err := json.Marshal(rec); err == nil {
			fmt.Println(string(out))
		}
	}
	if st := exec.Store(); st != nil && *progress {
		cs := st.Stats()
		fmt.Fprintf(os.Stderr, "[cache %s: %d replayed, %d simulated, %d entries]\n",
			st.Dir(), cs.Hits, exec.Runs(), st.Len())
	}
	if jnl != nil {
		if err := jnl.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "bpsim: warning: sweep journal went bad mid-run (resume may re-simulate): %v\n", err)
		}
	}
	ch.Report("bpsim")
}
