// Command bpsim regenerates the paper's performance tables and figures.
//
// Usage:
//
//	bpsim -exp fig1|fig2|fig3|fig7|fig8|fig9|fig10|table2|table3|table4|mpki|residency|all
//	      [-scale full|bench] [-seed N] [-workers N] [-progress]
//
// Simulations fan out across -workers goroutines (default: one per CPU);
// results are deterministic for any worker count. -progress emits one
// line per completed simulation to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"xorbp/internal/experiment"
	"xorbp/internal/hwcost"
	"xorbp/internal/runner"
	"xorbp/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (fig1, fig2, fig3, fig7, fig8, fig9, fig10, table2, table3, table4, table5, mpki, residency, workloads, all)")
	scaleName := flag.String("scale", "full", "simulation scale: full or bench")
	seed := flag.Uint64("seed", 1, "simulation seed")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of text tables")
	workers := flag.Int("workers", runner.DefaultWorkers(), "simulation worker pool size (<=0: one per CPU)")
	progress := flag.Bool("progress", false, "emit a line per completed simulation to stderr")
	flag.Parse()

	var scale experiment.Scale
	switch *scaleName {
	case "full":
		scale = experiment.FullScale()
	case "bench":
		scale = experiment.BenchScale()
	default:
		fmt.Fprintf(os.Stderr, "bpsim: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	scale.Seed = *seed
	exec := experiment.NewExecutor(*workers)
	if *progress {
		exec.SetProgress(os.Stderr)
	}
	s := experiment.NewSessionWith(scale, exec)

	runners := map[string]func() *experiment.Table{
		"fig1":      s.Figure1,
		"fig2":      s.Figure2,
		"fig3":      s.Figure3,
		"fig7":      s.Figure7,
		"fig8":      s.Figure8,
		"fig9":      s.Figure9,
		"fig10":     s.Figure10,
		"table2":    experiment.Table2,
		"table3":    experiment.Table3,
		"table4":    s.Table4,
		"table5":    hwcost.Table5,
		"mpki":      s.MPKI,
		"residency": s.BTBResidency,
		"workloads": func() *experiment.Table {
			t, err := workload.CharacterizationTable(400_000, *seed)
			if err != nil {
				panic(err)
			}
			return t
		},
	}
	order := []string{"table2", "table3", "workloads", "fig1", "fig2", "fig3",
		"fig7", "fig8", "fig9", "fig10", "table4", "table5", "mpki", "residency"}

	names := []string{*exp}
	if *exp == "all" {
		names = order
	}
	for _, name := range names {
		r, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "bpsim: unknown experiment %q\n", name)
			os.Exit(2)
		}
		start := time.Now()
		tab := r()
		if *asJSON {
			out, err := json.MarshalIndent(map[string]any{"experiment": name, "table": tab}, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(string(out))
			continue
		}
		fmt.Println(tab.Render())
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
