// Command bptrace records synthetic benchmark branch traces to the
// compact XBPT format and inspects existing traces.
//
// Usage:
//
//	bptrace -record gcc -n 1000000 -o gcc.xbpt [-seed N]
//	bptrace -stat gcc.xbpt
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"xorbp/internal/predictor"
	"xorbp/internal/trace"
	"xorbp/internal/workload"
)

func main() {
	record := flag.String("record", "", "benchmark to record (see workload registry)")
	n := flag.Int("n", 1_000_000, "events to record")
	out := flag.String("o", "", "output trace file")
	stat := flag.String("stat", "", "trace file to summarize")
	seed := flag.Uint64("seed", 1, "generator seed")
	flag.Parse()

	switch {
	case *record != "":
		if *out == "" {
			log.Fatal("bptrace: -record requires -o")
		}
		prof, err := workload.ByName(*record)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if _, err := trace.Record(workload.NewGenerator(prof, *seed), *n, f); err != nil {
			log.Fatal(err)
		}
		info, _ := f.Stat()
		fmt.Printf("recorded %d events of %s to %s (%d bytes, %.2f B/event)\n",
			*n, *record, *out, info.Size(), float64(info.Size())/float64(*n))

	case *stat != "":
		f, err := os.Open(*stat)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			log.Fatal(err)
		}
		var ev workload.BranchEvent
		var events, instr, taken, syscalls uint64
		classes := map[predictor.Class]uint64{}
		for {
			err := r.Next(&ev)
			if err == io.EOF {
				break
			}
			if err != nil {
				log.Fatal(err)
			}
			events++
			instr += uint64(ev.Gap) + 1
			classes[ev.Class]++
			if ev.Taken {
				taken++
			}
			if ev.Syscall {
				syscalls++
			}
		}
		fmt.Printf("%s: %d branch events, %d instructions\n", *stat, events, instr)
		fmt.Printf("  branch ratio: %.1f%%  taken: %.1f%%  syscalls: %d\n",
			float64(events)/float64(instr)*100, float64(taken)/float64(events)*100, syscalls)
		for _, c := range []predictor.Class{predictor.CondDirect, predictor.UncondDirect,
			predictor.Indirect, predictor.Call, predictor.IndirectCall, predictor.Return} {
			if classes[c] > 0 {
				fmt.Printf("  %-6s %9d (%.1f%%)\n", c, classes[c],
					float64(classes[c])/float64(events)*100)
			}
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}
