// Command bptrace records synthetic benchmark branch traces to the
// compact XBPT format and inspects existing traces.
//
// Usage:
//
//	bptrace -record gcc -n 1000000 -o gcc.xbpt [-seed N]
//	bptrace -record all -n 1000000 -o tracedir [-workers N]
//	bptrace -stat gcc.xbpt
//
// With -record all, every benchmark in the workload registry is recorded
// to <dir>/<name>.xbpt, fanned out across -workers goroutines.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"

	"xorbp/internal/predictor"
	"xorbp/internal/runner"
	"xorbp/internal/trace"
	"xorbp/internal/workload"
)

// recordOne writes n events of one benchmark to path and returns a
// summary line.
func recordOne(name, path string, n int, seed uint64) (string, error) {
	prof, err := workload.ByName(name)
	if err != nil {
		return "", err
	}
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	// On any failure past this point, remove the output: a truncated
	// .xbpt left on disk would pass for a valid (shorter) trace.
	fail := func(err error) (string, error) {
		f.Close()
		os.Remove(path)
		return "", err
	}
	if _, err := trace.Record(workload.NewGenerator(prof, seed), n, f); err != nil {
		return fail(err)
	}
	info, err := f.Stat()
	if err != nil {
		return fail(err)
	}
	// A buffered write can fail at close (full disk, NFS); that must not
	// report success.
	if err := f.Close(); err != nil {
		os.Remove(path)
		return "", err
	}
	return fmt.Sprintf("recorded %d events of %s to %s (%d bytes, %.2f B/event)",
		n, name, path, info.Size(), float64(info.Size())/float64(n)), nil
}

func main() {
	record := flag.String("record", "", "benchmark to record (see workload registry), or \"all\"")
	n := flag.Int("n", 1_000_000, "events to record")
	out := flag.String("o", "", "output trace file (-record all: output directory)")
	stat := flag.String("stat", "", "trace file to summarize")
	seed := flag.Uint64("seed", 1, "generator seed")
	workers := flag.Int("workers", runner.DefaultWorkers(), "recording worker pool size (<=0: one per CPU)")
	flag.Parse()

	switch {
	case *record == "all":
		if *out == "" {
			log.Fatal("bptrace: -record requires -o")
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
		names := workload.Names()
		sort.Strings(names) // registry order is map order; keep output stable
		type result struct {
			line string
			err  error
		}
		results := runner.Map(len(names), *workers, func(i int) result {
			path := filepath.Join(*out, names[i]+".xbpt")
			line, err := recordOne(names[i], path, *n, *seed)
			return result{line, err}
		})
		for _, r := range results {
			if r.err != nil {
				log.Fatal(r.err)
			}
			fmt.Println(r.line)
		}

	case *record != "":
		if *out == "" {
			log.Fatal("bptrace: -record requires -o")
		}
		line, err := recordOne(*record, *out, *n, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(line)

	case *stat != "":
		f, err := os.Open(*stat)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			log.Fatal(err)
		}
		var ev workload.BranchEvent
		var events, instr, taken, syscalls uint64
		classes := map[predictor.Class]uint64{}
		for {
			err := r.Next(&ev)
			if err == io.EOF {
				break
			}
			if err != nil {
				log.Fatal(err)
			}
			events++
			instr += uint64(ev.Gap) + 1
			classes[ev.Class]++
			if ev.Taken {
				taken++
			}
			if ev.Syscall {
				syscalls++
			}
		}
		fmt.Printf("%s: %d branch events, %d instructions\n", *stat, events, instr)
		fmt.Printf("  branch ratio: %.1f%%  taken: %.1f%%  syscalls: %d\n",
			float64(events)/float64(instr)*100, float64(taken)/float64(events)*100, syscalls)
		for _, c := range []predictor.Class{predictor.CondDirect, predictor.UncondDirect,
			predictor.Indirect, predictor.Call, predictor.IndirectCall, predictor.Return} {
			if classes[c] > 0 {
				fmt.Printf("  %-6s %9d (%.1f%%)\n", c, classes[c],
					float64(classes[c])/float64(events)*100)
			}
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}
