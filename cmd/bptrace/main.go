// Command bptrace records synthetic benchmark branch traces to the
// compact XBPT format and inspects existing traces.
//
// Usage:
//
//	bptrace -record gcc -n 1000000 -o gcc.xbpt [-seed N]
//	bptrace -record all -n 1000000 -o tracedir [-workers N]
//	bptrace -stat gcc.xbpt
//
// With -record all, every benchmark in the workload registry is recorded
// to <dir>/<name>.xbpt, fanned out across -workers goroutines.
//
// Recording reuses the persistent run cache shared with bpsim (-cache
// DIR, default ~/.cache/xorbp, "" disables): a (benchmark, n, seed)
// combination already recorded is skipped when its output file is still
// present and intact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"

	"xorbp/internal/predictor"
	"xorbp/internal/runcache"
	"xorbp/internal/runner"
	"xorbp/internal/trace"
	"xorbp/internal/workload"
)

// traceKey identifies one recording in the persistent cache.
type traceKey struct {
	Name string `json:"name"`
	N    int    `json:"n"`
	Seed uint64 `json:"seed"`
}

// tracedMeta is the cached fact about a completed recording. The output
// path is deliberately not part of it: a cached recording is valid for
// whatever path the caller asks for, as long as the file there matches
// the recorded size.
type tracedMeta struct {
	Bytes int64 `json:"bytes"`
}

// summaryLine formats the per-recording report.
func summaryLine(n int, name, path string, size int64) string {
	return fmt.Sprintf("recorded %d events of %s to %s (%d bytes, %.2f B/event)",
		n, name, path, size, float64(size)/float64(n))
}

// recordOne writes n events of one benchmark to path and returns a
// summary line. With a store attached, a recording whose key is cached
// and whose output file still matches is skipped.
func recordOne(st *runcache.Store, name, path string, n int, seed uint64) (string, error) {
	var key string
	if st != nil {
		payload, err := json.Marshal(traceKey{Name: name, N: n, Seed: seed})
		if err != nil {
			return "", err
		}
		key = st.Key(payload)
		if raw, ok := st.Get(key); ok {
			var m tracedMeta
			if json.Unmarshal(raw, &m) == nil {
				if info, err := os.Stat(path); err == nil && info.Size() == m.Bytes {
					return summaryLine(n, name, path, m.Bytes) + " [cached]", nil
				}
			}
		}
	}
	prof, err := workload.ByName(name)
	if err != nil {
		return "", err
	}
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	// On any failure past this point, remove the output: a truncated
	// .xbpt left on disk would pass for a valid (shorter) trace.
	fail := func(err error) (string, error) {
		f.Close()
		os.Remove(path)
		return "", err
	}
	if _, err := trace.Record(workload.NewGenerator(prof, seed), n, f); err != nil {
		return fail(err)
	}
	info, err := f.Stat()
	if err != nil {
		return fail(err)
	}
	// A buffered write can fail at close (full disk, NFS); that must not
	// report success.
	if err := f.Close(); err != nil {
		os.Remove(path)
		return "", err
	}
	if st != nil {
		if raw, err := json.Marshal(tracedMeta{Bytes: info.Size()}); err == nil {
			_ = st.Put(key, raw) // best-effort: a lost entry only costs a re-record
		}
	}
	return summaryLine(n, name, path, info.Size()), nil
}

func main() {
	record := flag.String("record", "", "benchmark to record (see workload registry), or \"all\"")
	n := flag.Int("n", 1_000_000, "events to record")
	out := flag.String("o", "", "output trace file (-record all: output directory)")
	stat := flag.String("stat", "", "trace file to summarize")
	seed := flag.Uint64("seed", 1, "generator seed")
	workers := flag.Int("workers", runner.DefaultWorkers(), "recording worker pool size (<=0: one per CPU)")
	cacheDir := flag.String("cache", runcache.DefaultDir(), "persistent record cache directory, shared with bpsim (\"\" disables)")
	flag.Parse()

	var st *runcache.Store
	if *cacheDir != "" && *record != "" {
		var err error
		st, err = runcache.Open(*cacheDir, trace.CacheSchema())
		if err != nil {
			fmt.Fprintf(os.Stderr, "bptrace: disabling record cache: %v\n", err)
			st = nil
		}
	}

	switch {
	case *record == "all":
		if *out == "" {
			log.Fatal("bptrace: -record requires -o")
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
		names := workload.Names()
		sort.Strings(names) // registry order is map order; keep output stable
		type result struct {
			line string
			err  error
		}
		results := runner.Map(len(names), *workers, func(i int) result {
			path := filepath.Join(*out, names[i]+".xbpt")
			line, err := recordOne(st, names[i], path, *n, *seed)
			return result{line, err}
		})
		for _, r := range results {
			if r.err != nil {
				log.Fatal(r.err)
			}
			fmt.Println(r.line)
		}

	case *record != "":
		if *out == "" {
			log.Fatal("bptrace: -record requires -o")
		}
		line, err := recordOne(st, *record, *out, *n, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(line)

	case *stat != "":
		f, err := os.Open(*stat)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			log.Fatal(err)
		}
		var ev workload.BranchEvent
		var events, instr, taken, syscalls uint64
		classes := map[predictor.Class]uint64{}
		for {
			err := r.Next(&ev)
			if err == io.EOF {
				break
			}
			if err != nil {
				log.Fatal(err)
			}
			events++
			instr += uint64(ev.Gap) + 1
			classes[ev.Class]++
			if ev.Taken {
				taken++
			}
			if ev.Syscall {
				syscalls++
			}
		}
		fmt.Printf("%s: %d branch events, %d instructions\n", *stat, events, instr)
		fmt.Printf("  branch ratio: %.1f%%  taken: %.1f%%  syscalls: %d\n",
			float64(events)/float64(instr)*100, float64(taken)/float64(events)*100, syscalls)
		for _, c := range []predictor.Class{predictor.CondDirect, predictor.UncondDirect,
			predictor.Indirect, predictor.Call, predictor.IndirectCall, predictor.Return} {
			if classes[c] > 0 {
				fmt.Printf("  %-6s %9d (%.1f%%)\n", c, classes[c],
					float64(classes[c])/float64(events)*100)
			}
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}
