// Command attacksim runs the paper's proof-of-concept attacks and
// regenerates the security comparison (Table 1) and the §5.5(3) training
// accuracy numbers.
//
// Usage:
//
//	attacksim [-table1] [-poc] [-quick] [-seed N]
//
// Without flags both experiments run at paper scale.
package main

import (
	"flag"
	"fmt"
	"time"

	"xorbp/internal/attack"
)

func main() {
	table1 := flag.Bool("table1", false, "run only the Table 1 matrix")
	poc := flag.Bool("poc", false, "run only the PoC accuracy experiment")
	quick := flag.Bool("quick", false, "reduced iteration counts")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	cfg := attack.DefaultConfig()
	if *quick {
		cfg = attack.QuickConfig()
	}
	cfg.Seed = *seed

	runAll := !*table1 && !*poc
	if *poc || runAll {
		start := time.Now()
		fmt.Println(attack.PoCAccuracy(cfg).Render())
		fmt.Printf("[poc completed in %v]\n\n", time.Since(start).Round(time.Millisecond))
	}
	if *table1 || runAll {
		start := time.Now()
		fmt.Println(attack.Table1(cfg).Render())
		fmt.Printf("[table1 completed in %v]\n\n", time.Since(start).Round(time.Millisecond))
	}
}
