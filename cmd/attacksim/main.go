// Command attacksim runs the paper's proof-of-concept attacks through
// the experiment engine: the §5.5(3) training-accuracy numbers, the
// security comparison (Table 1), and the security-sweep subsystem's
// attacker-present grid (internal/secsweep).
//
// Usage:
//
//	attacksim [-poc] [-table1] [-sweep] [-quick] [-seed N]
//	          [-workers N] [-progress] [-json]
//	          [-cache DIR] [-serve-addrs HOST:PORT,...] [-shard I/N]
//	          [-token T] [-route POLICY] [-tls-ca FILE]
//	          [-fleet HOST:PORT] [-fleet-lease D] [-tls-cert FILE] [-tls-key FILE]
//	          [-journal FILE] [-resume] [-chaos PLAN] [-degrade=false]
//	          [-cpuprofile FILE] [-memprofile FILE]
//
// Without a selector flag the PoC accuracy and Table 1 experiments run
// (the original attacksim surface); -sweep adds the full grid — attack
// success matrices for both core arrangements, the residual-rate vs
// re-key-period curve, the predictor cross, and the Table 1 verdicts
// recomputed through the engine. Selectors combine.
//
// Every attack cell is an engine job, so the flags shared with bpsim
// mean the same things: -cache persists resolved cells across
// invocations (a warm re-run simulates nothing), -workers bounds the
// in-process pool, -serve-addrs dispatches cells to bpserve daemons
// (-token authenticating against bpserve -token; -route picking the
// push routing policy, -tls-ca pinning the fleet CA), -fleet runs this
// process as a pull-queue leader that bpserve -pull workers claim
// batches from (-tls-cert/-tls-key serving that endpoint over TLS),
// -shard I/N statically partitions the grid across cooperating
// processes (tables suppressed; an unsharded run afterwards renders
// from the shared cache), -progress reports done/planned with a
// session-wide ETA over the pre-planned grid, and -json streams
// per-cell records, JSON tables and a final summary record. -journal
// FILE records every resolved cell in a crash-safe WAL so a killed
// sweep restarts with -resume and simulates only the remainder; -chaos
// PLAN arms deterministic fault injection (see internal/chaos and the
// bpsim doc — the robustness machinery is shared). Tables are
// byte-identical for every worker count, backend, routing policy and
// shard split.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"xorbp/internal/attack"
	"xorbp/internal/driver"
	"xorbp/internal/experiment"
	"xorbp/internal/report"
	"xorbp/internal/runcache"
	"xorbp/internal/runner"
	"xorbp/internal/secsweep"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "attacksim: "+format+"\n", args...)
	driver.StopProfiles() // os.Exit skips the deferred stop
	os.Exit(1)
}

func main() {
	poc := flag.Bool("poc", false, "run the PoC accuracy experiment")
	table1 := flag.Bool("table1", false, "run the Table 1 matrix")
	sweep := flag.Bool("sweep", false, "run the security-sweep grid (matrices, re-key curve, predictor cross, verdicts)")
	quick := flag.Bool("quick", false, "reduced iteration counts and grid dimensions")
	seed := flag.Uint64("seed", 1, "simulation seed")
	workers := flag.Int("workers", runner.DefaultWorkers(), "attack-cell worker pool size (<=0: one per CPU; with -serve-addrs, defaults to fleet capacity)")
	progress := flag.Bool("progress", false, "emit a line per resolved cell to stderr, with session-wide ETA")
	asJSON := flag.Bool("json", false, "emit per-cell records, machine-readable JSON tables and a final summary record instead of text")
	cacheDir := flag.String("cache", runcache.DefaultDir(), "persistent run-cache directory (\"\" disables)")
	serveAddrs := flag.String("serve-addrs", "", "comma-separated bpserve worker addresses (host:port); attack cells run remotely")
	shard := flag.String("shard", "", "static grid shard I/N (0-based): simulate only owned cells, skip the rest, suppress tables")
	token := flag.String("token", "", "bearer token for -serve-addrs workers (bpserve -token)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the invocation to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (post-GC) to this file on exit")
	journalPath := flag.String("journal", "", "append-only sweep journal (WAL): crash-safe record of planned and completed cells")
	resume := flag.Bool("resume", false, "resume from -journal: replay its completed cells and simulate only the remainder")
	chaosPlan := flag.String("chaos", "", "arm deterministic fault injection from this FaultPlan JSON file (hardening tests)")
	fleetFlags := driver.AddFleetFlags()
	flag.Parse()

	stopProfiles := driver.StartProfiles("attacksim", *cpuProfile, *memProfile)
	defer stopProfiles()

	cfg := attack.DefaultConfig()
	swCfg := secsweep.DefaultConfig()
	if *quick {
		cfg = attack.QuickConfig()
		swCfg = secsweep.QuickConfig()
	}
	cfg.Seed = *seed
	swCfg.Attack = cfg

	// A fleet sweep has a sink too: pull workers cache on their side.
	shardI, shardN := driver.ParseShard("attacksim", *shard,
		*cacheDir != "" || *serveAddrs != "" || *fleetFlags.Fleet != "")

	// Experiment set: the two PoC tables by default, the grid on -sweep.
	type exp struct {
		name string
		run  func(*experiment.Executor) []*report.Table
	}
	var exps []exp
	runAll := !*poc && !*table1 && !*sweep
	if *poc || runAll {
		exps = append(exps, exp{"poc", func(e *experiment.Executor) []*report.Table {
			return []*report.Table{secsweep.TableVia(e, func(m attack.Measurer) *report.Table {
				return attack.PoCAccuracyWith(cfg, m)
			})}
		}})
	}
	if *table1 || runAll {
		exps = append(exps, exp{"table1", func(e *experiment.Executor) []*report.Table {
			return []*report.Table{secsweep.TableVia(e, func(m attack.Measurer) *report.Table {
				return attack.Table1With(cfg, m)
			})}
		}})
	}
	if *sweep {
		exps = append(exps, exp{"sweep", func(e *experiment.Executor) []*report.Table {
			return secsweep.New(swCfg, e).Tables()
		}})
	}

	// Pick the topology: the in-process pool, a push-routed bpserve
	// fleet, or a pull-queue leader.
	workersSet := false
	flag.Visit(func(f *flag.Flag) { workersSet = workersSet || f.Name == "workers" })
	ch := driver.LoadChaos("attacksim", *chaosPlan)
	conn := driver.Connect(driver.ConnectOptions{
		Prog: "attacksim", ServeAddrs: *serveAddrs, Token: *token,
		Workers: *workers, WorkersSet: workersSet, Fleet: fleetFlags,
		Transport: ch.Transport(),
	})
	defer conn.Close()

	exec := experiment.NewExecutorWith(conn.PoolSize, conn.Backend)
	if shardN > 1 {
		exec.SetShard(shardI, shardN)
	}
	if *progress {
		exec.SetProgress(os.Stderr)
	}
	if *cacheDir != "" {
		st, err := runcache.Open(*cacheDir, experiment.SchemaVersion())
		if err != nil {
			fmt.Fprintf(os.Stderr, "attacksim: disabling run cache: %v\n", err)
		} else {
			exec.SetStore(st)
			ch.ArmStore(st)
		}
	}
	if *asJSON {
		exec.SetRecord(func(r experiment.RunRecord) {
			out, err := json.Marshal(struct {
				Type string `json:"type"`
				experiment.RunRecord
			}{"run", r})
			if err == nil {
				fmt.Println(string(out))
			}
		})
	}

	// Plan the whole invocation's grid against a dry executor so
	// -progress counts and the ETA cover every requested experiment
	// from the first line.
	planner := experiment.NewPlanner()
	for _, e := range exps {
		e.run(planner)
	}
	exec.Plan(planner)

	jnl := driver.AttachJournal("attacksim", exec, *journalPath, *resume)
	if jnl != nil {
		defer jnl.Close()
	}

	wallStart := time.Now()
	var shardProg driver.ShardProgress
	for _, e := range exps {
		start := time.Now()
		tabs := e.run(exec)
		if err := exec.Err(); err != nil {
			fatalf("backend failed: %v", err)
		}
		if shardN > 1 {
			// A sharded run populates the shared cache; its tables would
			// mix real cells with the zero results of skipped cells.
			fmt.Fprintln(os.Stderr, shardProg.Line(exec, shardI, shardN, e.name))
			continue
		}
		for _, tab := range tabs {
			if *asJSON {
				out, err := json.MarshalIndent(map[string]any{"experiment": e.name, "table": tab}, "", "  ")
				if err != nil {
					fatalf("%v", err)
				}
				fmt.Println(string(out))
				continue
			}
			fmt.Println(tab.Render())
		}
		if !*asJSON {
			fmt.Printf("[%s completed in %v]\n\n", e.name, time.Since(start).Round(time.Millisecond))
		}
	}
	if *asJSON {
		rec := driver.Summarize(exec, conn, shardI, shardN, wallStart)
		if out, err := json.Marshal(rec); err == nil {
			fmt.Println(string(out))
		}
	}
	if st := exec.Store(); st != nil && *progress {
		cs := st.Stats()
		fmt.Fprintf(os.Stderr, "[cache %s: %d replayed, %d simulated, %d entries]\n",
			st.Dir(), cs.Hits, exec.Runs(), st.Len())
	}
	if jnl != nil {
		if err := jnl.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "attacksim: warning: sweep journal went bad mid-run (resume may re-simulate): %v\n", err)
		}
	}
	ch.Report("attacksim")
}
