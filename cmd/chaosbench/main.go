// Command chaosbench proves the sweep machinery survives deterministic
// fault injection: every scenario runs the same workload as a fault-free
// serial run, arms an internal/chaos FaultPlan at one or more seams, and
// verifies the rendered tables are byte-identical — faults may cost
// retries, steals and re-simulations, never bytes.
//
// Usage:
//
//	chaosbench [-plan CHAOS_PLAN.json] [-scale micro|bench]
//	           [-fleet 3] [-cap 4] [-check]
//
// Scenarios:
//
//	serial   fault-free reference renders (Figure 1 and the re-key sweep)
//	push     bpserve fleet behind a fault-injecting transport (timeouts,
//	         resets, 5xx, slow), circuit breakers and in-process
//	         degradation armed, plus cache write corruption — reopened
//	         stores must quarantine exactly the corrupted entries
//	pull     pull-queue fleet with worker crashes mid-lease, dropped
//	         heartbeats and duplicate completions; sweep journal attached,
//	         then replayed into a fresh executor (zero re-simulation)
//	restart  the pull leader is killed mid-sweep at a plan-scheduled
//	         point; a restarted leader resumes from the journal, workers
//	         rejoin, and only the remainder is simulated
//	snap     snapshot prefix blobs corrupted on write; the re-key sweep
//	         must fall back to cold simulation with identical results,
//	         and a reopened snapshot store must quarantine the blob
//
// -check exits 1 on any divergence or failed invariant (CI runs this as
// the chaos-smoke gate). The plan file is committed, so a CI failure
// replays locally with the same flags.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"xorbp/internal/chaos"
	"xorbp/internal/driver"
	"xorbp/internal/experiment"
	"xorbp/internal/fleet"
	"xorbp/internal/runcache"
	"xorbp/internal/serve"
	"xorbp/internal/wire"
)

func main() {
	planPath := flag.String("plan", "CHAOS_PLAN.json", "FaultPlan JSON file driving every scenario")
	scaleName := flag.String("scale", "micro", "workload scale: micro or bench")
	fleetN := flag.Int("fleet", 3, "fleet size (serve workers / pull workers)")
	capacity := flag.Int("cap", 4, "simulation slots per fleet member")
	check := flag.Bool("check", false, "exit 1 on any divergence or failed invariant")
	flag.Parse()

	var scale experiment.Scale
	switch *scaleName {
	case "micro":
		scale = experiment.MicroScale()
	case "bench":
		scale = experiment.BenchScale()
	default:
		fmt.Fprintf(os.Stderr, "chaosbench: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	plan, err := chaos.LoadPlan(*planPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaosbench: %v\n", err)
		os.Exit(2)
	}
	if *fleetN < 1 || *capacity < 1 {
		fmt.Fprintln(os.Stderr, "chaosbench: -fleet and -cap must be >= 1")
		os.Exit(2)
	}

	h := &harness{scale: scale, plan: plan, n: *fleetN, cap: *capacity}
	fmt.Printf("# chaosbench: plan %s (seed %d, %d rules), %d members x %d slots, scale %s\n\n",
		*planPath, plan.Seed, len(plan.Rules), h.n, h.cap, *scaleName)

	serialFig := h.mustRender(experiment.NewExecutor(1))
	serialRekey := h.mustRenderRekey(experiment.NewExecutor(1))
	fmt.Println("serial: reference renders done")

	h.push(serialFig)
	h.pull(serialFig)
	h.restart(serialFig)
	h.snap(serialRekey)

	if len(h.fails) > 0 {
		fmt.Fprintf(os.Stderr, "\nchaosbench: %d invariant(s) failed\n", len(h.fails))
		if *check {
			os.Exit(1)
		}
		return
	}
	fmt.Println("\nchaosbench: all scenarios byte-identical under chaos")
}

// harness runs the scenarios and accumulates invariant failures.
type harness struct {
	scale  experiment.Scale
	plan   chaos.FaultPlan
	n, cap int
	fails  []string
}

func (h *harness) failf(format string, args ...any) {
	h.fails = append(h.fails, fmt.Sprintf(format, args...))
	fmt.Fprintf(os.Stderr, "chaosbench: FAIL: "+format+"\n", args...)
}

// injector builds a fresh decision stream from the shared plan — each
// scenario replays the plan independently.
func (h *harness) injector() *chaos.Injector {
	inj, err := chaos.NewInjector(h.plan)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaosbench: %v\n", err)
		os.Exit(2)
	}
	return inj
}

// mustRender resolves Figure 1 through exec; any executor error is a
// harness failure (used where faults must NOT surface as errors).
func (h *harness) mustRender(exec *experiment.Executor) string {
	out := experiment.NewSessionWith(h.scale, exec).Figure1().Render()
	if err := exec.Err(); err != nil {
		h.failf("executor failed: %v", err)
	}
	return out
}

func (h *harness) mustRenderRekey(exec *experiment.Executor) string {
	out := experiment.NewSessionWith(h.scale, exec).RekeySweep().Render()
	if err := exec.Err(); err != nil {
		h.failf("executor failed: %v", err)
	}
	return out
}

// planFig plans the Figure 1 grid onto exec (journal bookkeeping needs
// the planned key set before the first batch).
func (h *harness) planFig(exec *experiment.Executor) {
	p := experiment.NewPlanner()
	experiment.NewSessionWith(h.scale, p).Figure1()
	exec.Plan(p)
}

func (h *harness) tempDir(pattern string) string {
	dir, err := os.MkdirTemp("", pattern)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaosbench: %v\n", err)
		os.Exit(1)
	}
	return dir
}

// member is one in-process bpserve worker on a loopback listener.
type member struct {
	srv  *serve.Server
	addr string
	hs   *http.Server
}

func (h *harness) startMembers() []member {
	members := make([]member, h.n)
	for i := range members {
		srv := serve.New(h.cap, nil)
		srv.SetBackend(experiment.LocalBackend{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaosbench: %v\n", err)
			os.Exit(1)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go func() { _ = hs.Serve(ln) }()
		members[i] = member{srv: srv, addr: ln.Addr().String(), hs: hs}
	}
	return members
}

func stopMembers(members []member) {
	for _, m := range members {
		_ = m.hs.Close()
	}
}

// push: transport faults against a real HTTP fleet, with circuit
// breakers, in-process degradation and cache write corruption all armed.
func (h *harness) push(serial string) {
	inj := h.injector()
	members := h.startMembers()
	defer stopMembers(members)
	addrs := make([]string, len(members))
	for i, m := range members {
		addrs[i] = m.addr
	}

	client := wire.NewClient(addrs)
	client.SetTransport(chaos.NewTransport(inj, nil))
	// Collapse the retry backoff: chaosbench measures invariants, not
	// wall time, and injected timeouts would otherwise cost seconds.
	client.SetSleep(func(ctx context.Context, _ time.Duration) error { return ctx.Err() })
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	err := client.Probe(ctx)
	cancel()
	if err != nil {
		h.failf("push: probe: %v", err)
		return
	}

	dir := h.tempDir("chaosbench-push-*")
	defer os.RemoveAll(dir)
	st, err := runcache.Open(dir, experiment.SchemaVersion())
	if err != nil {
		h.failf("push: %v", err)
		return
	}
	st.SetFileFault(chaos.NewCacheFaults(inj))

	exec := experiment.NewExecutorWith(client.Workers(), driver.NewFallback("chaosbench", client))
	exec.SetStore(st)
	render := h.mustRender(exec)
	if render != serial {
		h.failf("push: render diverged from serial under transport+cache faults")
	}

	counts := inj.Counts()
	corrupted := int(counts["cachefile/bitflip"] + counts["cachefile/truncate"])
	if got := st.Stats().PutErrors; got != int(counts["cachefile/enospc"]) {
		h.failf("push: %d put errors, want %d (one per injected enospc)", got, counts["cachefile/enospc"])
	}

	// Reopen the cache: every corrupted file must be quarantined, and a
	// warm render over the survivors must re-simulate exactly the lost
	// entries (corrupted + never-written) and still match serial.
	st2, err := runcache.Open(dir, experiment.SchemaVersion())
	if err != nil {
		h.failf("push: reopen: %v", err)
		return
	}
	if got := st2.Stats().Quarantined; got != corrupted {
		h.failf("push: reopen quarantined %d entries, want %d (bitflip+truncate fires)", got, corrupted)
	}
	warm := experiment.NewExecutorWith(4, experiment.LocalBackend{})
	warm.SetStore(st2)
	if h.mustRender(warm) != serial {
		h.failf("push: warm render from quarantine-swept cache diverged")
	}
	lost := corrupted + int(counts["cachefile/enospc"])
	if int(warm.Runs()) != lost {
		h.failf("push: warm render simulated %d cells, want %d (corrupted+enospc)", warm.Runs(), lost)
	}
	fmt.Printf("push: identical; breakers open at end: %d; warm pass re-simulated %d lost entries; faults: %v\n",
		client.OpenCircuits(), lost, inj.CountLines())
}

// pull: worker-lifecycle faults against a real pull queue, with the
// sweep journal attached and then replayed into a fresh executor.
func (h *harness) pull(serial string) {
	inj := h.injector()
	// A short lease keeps crashed-batch stealing fast; chaosbench's
	// slowest simulation is far under it.
	q := fleet.NewQueue(500*time.Millisecond, time.Now)
	leader := fleet.NewLeader(q, "")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaosbench: %v\n", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: leader.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ff := chaos.NewFleetFaults(inj)
	workers := make([]*fleet.PullWorker, h.n)
	for i := range workers {
		w := fleet.NewPullWorker(ln.Addr().String(), fmt.Sprintf("chaos-%d", i),
			experiment.LocalBackend{}, nil, h.cap, h.cap)
		w.SetFaults(ff)
		workers[i] = w
		go func() { _ = w.Run(ctx) }()
	}

	dir := h.tempDir("chaosbench-pull-*")
	defer os.RemoveAll(dir)
	jpath := filepath.Join(dir, "sweep.journal")

	exec := experiment.NewExecutorWith(h.n*h.cap, leader.Backend())
	h.planFig(exec)
	j, err := driver.OpenJournal(jpath, experiment.SchemaVersion(), false)
	if err != nil {
		h.failf("pull: %v", err)
		return
	}
	j.Plan(exec.PlannedKeys())
	exec.SetJournal(j)

	render := h.mustRender(exec)
	if render != serial {
		h.failf("pull: render diverged from serial under worker faults")
	}
	if err := j.Err(); err != nil {
		h.failf("pull: journal: %v", err)
	}
	if j.Done() != exec.Planned() {
		h.failf("pull: journal holds %d cells, want %d", j.Done(), exec.Planned())
	}
	_ = j.Close()

	counts := inj.Counts()
	st := q.Stats()
	var crashes uint64
	for _, w := range workers {
		crashes += w.Crashes()
	}
	if crashes != counts["fleet/workercrash"] {
		h.failf("pull: %d worker crashes, want %d (plan fires)", crashes, counts["fleet/workercrash"])
	}
	if crashes > 0 && st.Stolen == 0 {
		h.failf("pull: a worker crashed mid-lease but no specs were stolen")
	}

	// Resume: a fresh executor primed from the journal must render
	// identically without a single simulation.
	j2, err := driver.OpenJournal(jpath, experiment.SchemaVersion(), true)
	if err != nil {
		h.failf("pull: resume: %v", err)
		return
	}
	resumed := experiment.NewExecutorWith(1, experiment.LocalBackend{})
	h.planFig(resumed)
	primed := j2.PrimeExecutor(resumed)
	_ = j2.Close()
	if primed != resumed.Planned() {
		h.failf("pull: resume primed %d cells, want the full grid (%d)", primed, resumed.Planned())
	}
	if h.mustRender(resumed) != serial {
		h.failf("pull: resumed render diverged from serial")
	}
	if resumed.Runs() != 0 {
		h.failf("pull: resumed render simulated %d cells, want 0", resumed.Runs())
	}
	fmt.Printf("pull: identical; crashes=%d stolen=%d duplicates=%d; resume replayed %d cells with 0 simulations; faults: %v\n",
		crashes, st.Stolen, st.Duplicates, primed, inj.CountLines())
}

// crashingBackend wraps the leader's submitting backend: at the
// plan-scheduled leaderrestart decision point it "kills the leader" —
// the triggering run and every later one fail, exactly as a sweep whose
// leader process died. The chaos count cap means the restarted pass
// sails through the same wrapper untouched.
type crashingBackend struct {
	inner experiment.Backend
	inj   *chaos.Injector
	dead  atomic.Bool
}

func (c *crashingBackend) Run(ctx context.Context, spec wire.Spec) (wire.Result, error) {
	if c.dead.Load() {
		return wire.Result{}, errors.New("chaosbench: leader is down")
	}
	if c.inj.Hit(chaos.LeaderRestart{}) {
		c.dead.Store(true)
		return wire.Result{}, errors.New("chaosbench: leader killed by plan (leaderrestart)")
	}
	return c.inner.Run(ctx, spec)
}

// restart: the pull leader dies mid-sweep; a second leader resumes from
// the journal, fresh workers rejoin, and only the remainder simulates.
func (h *harness) restart(serial string) {
	inj := h.injector()
	dir := h.tempDir("chaosbench-restart-*")
	defer os.RemoveAll(dir)
	jpath := filepath.Join(dir, "sweep.journal")

	runPass := func(resume bool) (done, primed int, runs uint64, execErr error) {
		q := fleet.NewQueue(500*time.Millisecond, time.Now)
		leader := fleet.NewLeader(q, "")
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaosbench: %v\n", err)
			os.Exit(1)
		}
		hs := &http.Server{Handler: leader.Handler()}
		go func() { _ = hs.Serve(ln) }()
		defer hs.Close()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		for i := range h.n {
			w := fleet.NewPullWorker(ln.Addr().String(), fmt.Sprintf("restart-%d", i),
				experiment.LocalBackend{}, nil, h.cap, h.cap)
			go func() { _ = w.Run(ctx) }()
		}

		// A pool narrower than the grid keeps most of the sweep behind
		// the kill point, so the crash leaves real work for the resume.
		exec := experiment.NewExecutorWith(4, &crashingBackend{inner: leader.Backend(), inj: inj})
		h.planFig(exec)
		j, err := driver.OpenJournal(jpath, experiment.SchemaVersion(), resume)
		if err != nil {
			h.failf("restart: %v", err)
			os.Exit(1)
		}
		defer j.Close()
		if resume {
			primed = j.PrimeExecutor(exec)
		}
		j.Plan(exec.PlannedKeys())
		exec.SetJournal(j)
		render := experiment.NewSessionWith(h.scale, exec).Figure1().Render()
		if execErr = exec.Err(); execErr == nil && render != serial {
			h.failf("restart: render diverged from serial")
		}
		return j.Done(), primed, exec.Runs(), execErr
	}

	done1, _, _, err1 := runPass(false)
	planned := h.gridSize()
	if err1 == nil {
		h.failf("restart: first pass survived — leaderrestart never fired (plan too late for a %d-cell grid?)", planned)
		return
	}
	if done1 >= planned {
		h.failf("restart: first pass journaled the whole grid (%d) despite the crash", done1)
	}

	done2, primed2, runs2, err2 := runPass(true)
	if err2 != nil {
		h.failf("restart: resumed pass failed: %v", err2)
		return
	}
	if primed2 != done1 {
		h.failf("restart: resumed pass primed %d cells, journal held %d", primed2, done1)
	}
	if int(runs2) != planned-primed2 {
		h.failf("restart: resumed pass simulated %d cells, want exactly the remainder %d — a journaled cell ran twice or was lost",
			runs2, planned-primed2)
	}
	if done2 != planned {
		h.failf("restart: resumed journal holds %d cells, want %d", done2, planned)
	}
	fmt.Printf("restart: leader killed after %d/%d cells; resume primed %d, simulated only the %d-cell remainder; identical\n",
		done1, planned, primed2, runs2)
}

func (h *harness) gridSize() int {
	p := experiment.NewPlanner()
	experiment.NewSessionWith(h.scale, p).Figure1()
	return p.Planned()
}

// snap: snapshot prefix blobs corrupted on write. The sweep must not
// notice (restore falls back to cold simulation), and a reopened
// snapshot store must quarantine exactly the corrupted blobs.
func (h *harness) snap(serialRekey string) {
	inj := h.injector()
	dir := h.tempDir("chaosbench-snap-*")
	defer os.RemoveAll(dir)
	st, err := runcache.Open(dir, experiment.SnapSchema())
	if err != nil {
		h.failf("snap: %v", err)
		return
	}
	st.SetFileFault(chaos.NewSnapFaults(inj))

	exec := experiment.NewExecutorWith(4, experiment.LocalBackend{})
	exec.SetSnapshots(experiment.NewSnapStore(st))
	if h.mustRenderRekey(exec) != serialRekey {
		h.failf("snap: re-key render diverged under snapshot corruption")
	}

	flips := int(inj.Counts()["snapshot/snapcorrupt"])
	st2, err := runcache.Open(dir, experiment.SnapSchema())
	if err != nil {
		h.failf("snap: reopen: %v", err)
		return
	}
	if got := st2.Stats().Quarantined; got != flips {
		h.failf("snap: reopen quarantined %d blobs, want %d (snapcorrupt fires)", got, flips)
	}
	// A second sweep over the quarantine-swept snapshot store must also
	// match: missing prefixes only cost cold simulation.
	exec2 := experiment.NewExecutorWith(4, experiment.LocalBackend{})
	exec2.SetSnapshots(experiment.NewSnapStore(st2))
	if h.mustRenderRekey(exec2) != serialRekey {
		h.failf("snap: warm re-key render over swept snapshot store diverged")
	}
	fmt.Printf("snap: identical; %d corrupted blob(s) quarantined at reopen; faults: %v\n",
		flips, inj.CountLines())
}
