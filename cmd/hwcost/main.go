// Command hwcost prints the Table 5 area/timing overhead estimation.
package main

import (
	"fmt"

	"xorbp/internal/hwcost"
)

func main() {
	fmt.Println(hwcost.Table5().Render())
}
