// Command bpbench is the machine-readable benchmark harness behind the
// repo's performance-regression gate.
//
// Usage:
//
//	bpbench [-quick] [-seed N] [-out BENCH_8.json]
//	        [-check BASELINE.json] [-max-regress 0.20] [-min-speedup R]
//
// It measures simulation throughput — nanoseconds per simulated
// kilo-instruction, and heap allocations over the timed window — for a
// grid of single-core and SMT cells (predictor x mechanism x workload,
// including a trace-replay cell), running every cell under both the
// fast engine and the reference stepper. Each cell's speedup is the
// reference-to-fast ratio: both engines share the predictor stack, so
// the ratio isolates what event batching and cycle fast-forwarding buy.
//
// Beyond the engine grid, the report carries a fork section: the
// re-key-period sweep (eight cells differing only in RekeyPeriod)
// resolved through the executor's prefix-sharing fork path, timed
// against the same cells run cold and against one single cold run.
//
// -out writes the results as JSON (the repo commits BENCH_8.json at the
// root). -check reads a previously committed baseline and fails (exit
// 1) when any cell's fast-engine ns/kinst regressed by more than
// -max-regress (default 20%), when a zero-allocation cell started
// allocating, when the mean engine speedup fell below -min-speedup, or
// when the fork section shows the forked sweep costing more than
// experiment.MaxForkRatio single runs (or diverging from the straight
// results). Absolute ns/kinst is machine-dependent — CI compares runs
// on its own runner class against the committed baseline, accepting the
// tolerance; the speedup, allocation and fork-ratio gates are
// machine-independent.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"

	"xorbp/internal/core"
	"xorbp/internal/cpu"
	"xorbp/internal/experiment"
	"xorbp/internal/report"
	"xorbp/internal/trace"
	"xorbp/internal/workload"
)

// Schema identifies the BENCH_*.json encoding.
const Schema = "xorbp-bench/v1"

// Cell is one measured configuration.
type Cell struct {
	Name string `json:"name"`
	// FastNsPerKinst / RefNsPerKinst are nanoseconds per simulated
	// kilo-instruction under each engine.
	FastNsPerKinst float64 `json:"fast_ns_per_kinst"`
	RefNsPerKinst  float64 `json:"ref_ns_per_kinst"`
	// Speedup is RefNsPerKinst / FastNsPerKinst.
	Speedup float64 `json:"speedup"`
	// AllocsPerMInst counts heap allocations per million simulated
	// instructions in the fast engine's timed window (0 in steady state).
	AllocsPerMInst float64 `json:"allocs_per_minst"`
}

// Report is the BENCH_*.json document.
type Report struct {
	Schema      string  `json:"schema"`
	Go          string  `json:"go"`
	Quick       bool    `json:"quick"`
	Seed        uint64  `json:"seed"`
	Cells       []Cell  `json:"cells"`
	MeanSpeedup float64 `json:"mean_speedup"`
	MaxSpeedup  float64 `json:"max_speedup"`
	// Fork is the prefix-sharing fork-vs-straight sweep measurement.
	Fork *experiment.ForkBench `json:"fork,omitempty"`
	// SeedNote documents the one-time measurement against the pre-PR
	// tree recorded in EXPERIMENTS.md; the live gate compares against
	// this file, not against that tree.
	SeedNote string `json:"seed_note,omitempty"`
}

// spec is a cell before measurement.
type spec struct {
	name     string
	pred     string
	mech     core.Mechanism
	cfg      cpu.Config
	pair     [2]string
	total    bool // RunTotalInstructions (SMT measurement)
	replay   bool // drive threads from an in-memory trace recording
	replayed int  // events captured per replay program
}

// grid returns the measured cells. Quick keeps one row per distinct
// shape so the CI smoke job stays fast; the full grid crosses every
// sweep predictor with every mechanism.
func grid(quick bool) []spec {
	single := func(name, pred string, m core.Mechanism, a, b string) spec {
		return spec{name: name, pred: pred, mech: m, cfg: cpu.FPGAConfig(), pair: [2]string{a, b}}
	}
	cells := []spec{
		single("single/tage/gcc/baseline", "tage", core.Baseline, "gcc", "calculix"),
		single("single/tage/gcc/complete-flush", "tage", core.CompleteFlush, "gcc", "calculix"),
		single("single/tage/gcc/noisy-xor", "tage", core.NoisyXOR, "gcc", "calculix"),
		single("single/gshare/gcc/noisy-xor", "gshare", core.NoisyXOR, "gcc", "calculix"),
		single("single/gshare/gromacs/baseline", "gshare", core.Baseline, "gromacs", "GemsFDTD"),
		single("single/gshare/gromacs/complete-flush", "gshare", core.CompleteFlush, "gromacs", "GemsFDTD"),
		{name: "replay/gshare/gromacs/baseline", pred: "gshare", mech: core.Baseline,
			cfg: cpu.FPGAConfig(), pair: [2]string{"gromacs", "GemsFDTD"}, replay: true, replayed: 60_000},
		{name: "smt2/ltage/zeusmp/noisy-xor", pred: "ltage", mech: core.NoisyXOR,
			cfg: cpu.Gem5Config(2), pair: [2]string{"zeusmp", "lbm"}, total: true},
	}
	if quick {
		return cells
	}
	for _, pred := range experiment.PredictorNames() {
		for _, m := range []core.Mechanism{core.Baseline, core.CompleteFlush,
			core.PreciseFlush, core.XOR, core.NoisyXOR} {
			name := fmt.Sprintf("grid/%s/%s", pred, m)
			cells = append(cells, spec{name: name, pred: pred, mech: m,
				cfg: cpu.FPGAConfig(), pair: [2]string{"gcc", "calculix"}})
		}
	}
	return cells
}

// build wires a fresh core for one cell.
func build(s spec, seed uint64, e cpu.Engine) *cpu.Core {
	ctrl := core.NewController(core.OptionsFor(s.mech), seed)
	dir := experiment.NewDirPredictor(s.pred, ctrl)
	c := cpu.New(s.cfg, cpu.DefaultScheduler(1_000_000), ctrl, dir)
	c.SetEngine(e)
	var progs []workload.Program
	for i, n := range s.pair {
		gen := workload.NewGenerator(workload.MustByName(n), seed*1000+uint64(i))
		if s.replay {
			p, err := trace.Record(gen, s.replayed, nil)
			if err != nil {
				panic(err)
			}
			progs = append(progs, p)
			continue
		}
		progs = append(progs, gen)
	}
	c.Assign(progs...)
	return c
}

// measure times one cell under one engine. The benchmark's op is one
// simulated instruction, so ns/kinst is 1000x ns/op; allocations are
// counted over the timed window only (after warmup).
func measure(s spec, seed uint64, e cpu.Engine) (nsPerKinst, allocsPerMInst float64) {
	r := testing.Benchmark(func(b *testing.B) {
		c := build(s, seed, e)
		warm := uint64(200_000)
		if s.total {
			c.RunTotalInstructions(warm)
		} else {
			c.RunTargetInstructions(warm)
		}
		b.ReportAllocs()
		b.ResetTimer()
		if s.total {
			c.RunTotalInstructions(uint64(b.N))
		} else {
			c.RunTargetInstructions(uint64(b.N))
		}
	})
	nsPerKinst = float64(r.T.Nanoseconds()) / float64(r.N) * 1000
	allocsPerMInst = float64(r.MemAllocs) / float64(r.N) * 1e6
	return nsPerKinst, allocsPerMInst
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bpbench: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	quick := flag.Bool("quick", false, "measure the reduced cell set (CI smoke)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	out := flag.String("out", "", "write the JSON report to this file")
	check := flag.String("check", "", "compare against a baseline JSON report and fail on regression")
	maxRegress := flag.Float64("max-regress", 0.20, "with -check: max tolerated fast-engine ns/kinst regression per cell (negative disables the machine-dependent ns gate)")
	minSpeedup := flag.Float64("min-speedup", 1.0, "with -check: fail if the mean engine speedup drops below this")
	note := flag.String("note", "", "free-form note recorded in the report (e.g. the one-time pre-PR comparison)")
	replay := flag.String("replay", "", "skip measuring: load this previously-written report and apply -check/-out to it")
	flag.Parse()

	if *replay != "" {
		data, err := os.ReadFile(*replay)
		if err != nil {
			fatalf("-replay: %v", err)
		}
		var rep Report
		if err := json.Unmarshal(data, &rep); err != nil {
			fatalf("-replay: decoding %s: %v", *replay, err)
		}
		if rep.Schema != Schema {
			fatalf("-replay: %s has schema %q, want %q", *replay, rep.Schema, Schema)
		}
		if *out != "" {
			if len(data) == 0 || data[len(data)-1] != '\n' {
				data = append(data, '\n')
			}
			if err := os.WriteFile(*out, data, 0o644); err != nil {
				fatalf("writing %s: %v", *out, err)
			}
		}
		if *check != "" {
			if err := checkAgainst(rep, *check, *maxRegress, *minSpeedup); err != nil {
				fatalf("regression check failed: %v", err)
			}
			fmt.Fprintf(os.Stderr, "[no regression vs %s]\n", *check)
		}
		return
	}

	rep := Report{Schema: Schema, Go: runtime.Version(), Quick: *quick, Seed: *seed, SeedNote: *note}
	var sum float64
	for _, s := range grid(*quick) {
		refNs, _ := measure(s, *seed, cpu.EngineReference)
		fastNs, allocs := measure(s, *seed, cpu.EngineFast)
		c := Cell{
			Name:           s.name,
			FastNsPerKinst: fastNs,
			RefNsPerKinst:  refNs,
			Speedup:        refNs / fastNs,
			AllocsPerMInst: allocs,
		}
		rep.Cells = append(rep.Cells, c)
		sum += c.Speedup
		if c.Speedup > rep.MaxSpeedup {
			rep.MaxSpeedup = c.Speedup
		}
		fmt.Fprintf(os.Stderr, "[%s: fast %.0f ns/kinst, ref %.0f, speedup %.2fx, allocs/Minst %.1f]\n",
			c.Name, c.FastNsPerKinst, c.RefNsPerKinst, c.Speedup, c.AllocsPerMInst)
	}
	rep.MeanSpeedup = sum / float64(len(rep.Cells))

	// Bench scale even under -quick: at micro scale the per-member fixed
	// costs (construction, snapshot, restore) dwarf the simulated tails
	// and the ratio stops measuring prefix sharing. A few seconds total.
	scale := experiment.BenchScale()
	scale.Seed = *seed
	fb := experiment.MeasureForkBench(scale)
	rep.Fork = &fb
	fmt.Fprintf(os.Stderr,
		"[fork sweep: 8 periods over %d cycles; forked %.0f ms = %.2fx one run (straight %.0f ms, %.1fx slower), match=%v]\n",
		fb.BaseCycles, fb.ForkedMs, fb.RatioVsSingle, fb.StraightMs, fb.SpeedupVsStraight, fb.Match)

	t := &report.Table{
		Title:  "bpbench: simulation throughput per cell",
		Header: []string{"cell", "fast ns/kinst", "ref ns/kinst", "speedup", "allocs/Minst"},
		Caption: "One op = one simulated instruction; speedup is the reference\n" +
			"stepper's cost over the fast engine's on identical cells.",
	}
	for _, c := range rep.Cells {
		t.AddRow(c.Name, fmt.Sprintf("%.0f", c.FastNsPerKinst), fmt.Sprintf("%.0f", c.RefNsPerKinst),
			fmt.Sprintf("%.2fx", c.Speedup), fmt.Sprintf("%.1f", c.AllocsPerMInst))
	}
	t.AddRow("mean", "", "", fmt.Sprintf("%.2fx", rep.MeanSpeedup), "")
	fmt.Println(t.Render())
	fmt.Printf("fork sweep: 8-period re-key family forked in %.2fx one cold run\n"+
		"(straight re-simulation: %.2fx); results byte-identical: %v\n\n",
		fb.RatioVsSingle, fb.StraightMs/fb.SingleMs, fb.Match)

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatalf("encoding report: %v", err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatalf("writing %s: %v", *out, err)
		}
		fmt.Fprintf(os.Stderr, "[wrote %s]\n", *out)
	}

	if *check != "" {
		if err := checkAgainst(rep, *check, *maxRegress, *minSpeedup); err != nil {
			fatalf("regression check failed: %v", err)
		}
		fmt.Fprintf(os.Stderr, "[no regression vs %s]\n", *check)
	}
}

// checkAgainst enforces the regression gate against a baseline report.
// Cells are matched by name; cells present on only one side are
// reported but not fatal (the grid may legitimately grow).
func checkAgainst(cur Report, path string, maxRegress, minSpeedup float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("decoding %s: %w", path, err)
	}
	if base.Schema != Schema {
		return fmt.Errorf("%s has schema %q, want %q", path, base.Schema, Schema)
	}
	baseByName := make(map[string]Cell, len(base.Cells))
	for _, c := range base.Cells {
		baseByName[c.Name] = c
	}
	var failures []string
	matched := 0
	for _, c := range cur.Cells {
		b, ok := baseByName[c.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "[new cell %s: no baseline, skipping]\n", c.Name)
			continue
		}
		matched++
		if maxRegress >= 0 && c.FastNsPerKinst > b.FastNsPerKinst*(1+maxRegress) {
			failures = append(failures, fmt.Sprintf(
				"%s: %.0f ns/kinst vs baseline %.0f (+%.0f%%, tolerance %.0f%%)",
				c.Name, c.FastNsPerKinst, b.FastNsPerKinst,
				(c.FastNsPerKinst/b.FastNsPerKinst-1)*100, maxRegress*100))
		}
		// Rare ring/buffer growth contributes fractional allocs per
		// million instructions; a unit of slack separates that noise
		// from a genuinely allocating inner loop.
		if c.AllocsPerMInst > b.AllocsPerMInst+1 {
			failures = append(failures, fmt.Sprintf(
				"%s: steady-state loop allocating (%.1f allocs/Minst vs baseline %.1f)",
				c.Name, c.AllocsPerMInst, b.AllocsPerMInst))
		}
	}
	if matched == 0 {
		return fmt.Errorf("no cells in common with %s", path)
	}
	if cur.MeanSpeedup < minSpeedup {
		failures = append(failures, fmt.Sprintf(
			"mean engine speedup %.2fx below required %.2fx", cur.MeanSpeedup, minSpeedup))
	}
	// The fork gates are self-contained (ratio and identity within the
	// current report), so they need no baseline counterpart and are
	// machine-independent.
	if cur.Fork != nil {
		if !cur.Fork.Match {
			failures = append(failures, "fork sweep: forked results diverge from straight runs")
		}
		if cur.Fork.RatioVsSingle >= experiment.MaxForkRatio {
			failures = append(failures, fmt.Sprintf(
				"fork sweep: forked 8-period sweep cost %.2fx one run (gate %.1fx)",
				cur.Fork.RatioVsSingle, experiment.MaxForkRatio))
		}
	}
	if len(failures) > 0 {
		sort.Strings(failures)
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "REGRESSION: "+f)
		}
		return fmt.Errorf("%d regression(s)", len(failures))
	}
	return nil
}
