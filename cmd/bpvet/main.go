// Command bpvet runs the repository's static-invariant analyzers
// (determinism, errcheck, exhaustive, hotpath, lockcheck, keytaint)
// over the given package patterns and exits non-zero if any diagnostic
// survives the //bpvet directives. It is the CI gate behind the
// engine's reproducibility, concurrency and zero-allocation
// guarantees; see internal/analysis for the framework and the
// directive grammar.
//
// Usage:
//
//	go run ./cmd/bpvet [flags] [packages]
//
// With no patterns, ./... is assumed. By default diagnostics print one
// per line as file:line:col: [analyzer] message, sorted by position.
//
//	-run list    run only the named analyzers (comma-separated)
//	-json        print the versioned JSON report to stdout
//	-sarif       print a SARIF 2.1.0 log to stdout
//	-github      print GitHub Actions ::error annotations to stdout
//	-out FILE    also write the report to FILE (SARIF with -sarif,
//	             JSON otherwise), independent of what stdout shows
//	-fix         apply suggested fixes to the source files
//
// Exit status: 0 when no diagnostics remain (under -fix: when every
// diagnostic had an applicable fix), 1 on findings, 2 on operational
// failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xorbp/internal/analysis"
	"xorbp/internal/analysis/determinism"
	"xorbp/internal/analysis/errcheck"
	"xorbp/internal/analysis/exhaustive"
	"xorbp/internal/analysis/hotpath"
	"xorbp/internal/analysis/keytaint"
	"xorbp/internal/analysis/lockcheck"
)

var analyzers = []*analysis.Analyzer{
	determinism.Analyzer,
	errcheck.Analyzer,
	exhaustive.Analyzer,
	hotpath.Analyzer,
	keytaint.Analyzer,
	lockcheck.Analyzer,
}

func main() {
	var (
		runList    = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		jsonOut    = flag.Bool("json", false, "print the JSON report to stdout")
		sarifOut   = flag.Bool("sarif", false, "print a SARIF 2.1.0 log to stdout")
		githubOut  = flag.Bool("github", false, "print GitHub Actions ::error annotations to stdout")
		outFile    = flag.String("out", "", "also write the report (JSON, or SARIF with -sarif) to this file")
		applyFixes = flag.Bool("fix", false, "apply suggested fixes to the source files")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: bpvet [flags] [packages]\n\nFlags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "bpvet: "+format+"\n", args...)
		os.Exit(2)
	}
	if *jsonOut && *sarifOut {
		fail("-json and -sarif are mutually exclusive (stdout carries one format)")
	}

	selected, err := selectAnalyzers(*runList)
	if err != nil {
		fail("%v", err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fail("%v", err)
	}
	pkgs, err := analysis.Load(wd, patterns...)
	if err != nil {
		fail("%v", err)
	}
	// A filtered run disables the unused-directive ratchet: a directive
	// justifying a lockcheck finding is legitimately unused when only
	// keytaint runs.
	diags, err := analysis.RunWith(pkgs, selected, analysis.RunOpts{ReportUnused: *runList == ""})
	if err != nil {
		fail("%v", err)
	}

	report := analysis.NewReport(diags, wd)
	if *outFile != "" {
		data := report.EncodeJSON()
		if *sarifOut {
			data = report.EncodeSARIF()
		}
		if err := os.WriteFile(*outFile, data, 0o644); err != nil {
			fail("%v", err)
		}
	}

	if *applyFixes {
		fixed, err := analysis.ApplyFixes(diags)
		if err != nil {
			fail("%v", err)
		}
		for file, content := range fixed {
			if err := os.WriteFile(file, content, 0o644); err != nil {
				fail("%v", err)
			}
		}
		var remaining []analysis.Diagnostic
		for _, d := range diags {
			if len(d.Fixes) == 0 {
				remaining = append(remaining, d)
			}
		}
		for _, d := range remaining {
			fmt.Println(d.String())
		}
		fmt.Fprintf(os.Stderr, "bpvet: fixed %d diagnostic(s) in %d file(s), %d not auto-fixable\n",
			len(diags)-len(remaining), len(fixed), len(remaining))
		if len(remaining) > 0 {
			os.Exit(1)
		}
		return
	}

	switch {
	case *jsonOut:
		os.Stdout.Write(report.EncodeJSON())
	case *sarifOut:
		os.Stdout.Write(report.EncodeSARIF())
	case *githubOut:
		report.WriteGitHubAnnotations(os.Stdout)
	default:
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "bpvet: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}

// selectAnalyzers resolves a -run list against the registry, keeping
// registry order; an empty list selects everything.
func selectAnalyzers(runList string) ([]*analysis.Analyzer, error) {
	if runList == "" {
		return analyzers, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(analyzers))
	var names []string
	for _, a := range analyzers {
		byName[a.Name] = a
		names = append(names, a.Name)
	}
	want := make(map[string]bool)
	for _, name := range strings.Split(runList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if byName[name] == nil {
			return nil, fmt.Errorf("unknown analyzer %q (available: %s)", name, strings.Join(names, ", "))
		}
		want[name] = true
	}
	if len(want) == 0 {
		return nil, fmt.Errorf("-run selected no analyzers")
	}
	var selected []*analysis.Analyzer
	for _, a := range analyzers {
		if want[a.Name] {
			selected = append(selected, a)
		}
	}
	return selected, nil
}
