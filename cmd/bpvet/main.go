// Command bpvet runs the repository's static-invariant analyzers
// (determinism, hotpath, exhaustive, errcheck) over the given package
// patterns and exits non-zero if any diagnostic survives the //bpvet
// directives. It is the CI gate behind the engine's reproducibility and
// zero-allocation guarantees; see internal/analysis for the framework
// and the directive grammar.
//
// Usage:
//
//	go run ./cmd/bpvet ./...
//
// With no patterns, ./... is assumed. Diagnostics print one per line as
// file:line:col: [analyzer] message, sorted by position.
package main

import (
	"flag"
	"fmt"
	"os"

	"xorbp/internal/analysis"
	"xorbp/internal/analysis/determinism"
	"xorbp/internal/analysis/errcheck"
	"xorbp/internal/analysis/exhaustive"
	"xorbp/internal/analysis/hotpath"
)

var analyzers = []*analysis.Analyzer{
	determinism.Analyzer,
	errcheck.Analyzer,
	exhaustive.Analyzer,
	hotpath.Analyzer,
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: bpvet [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bpvet:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bpvet:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bpvet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "bpvet: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}
